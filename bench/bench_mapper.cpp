/**
 * @file
 * `bench_mapper` — mapper-throughput microbenchmark.
 *
 * Maps the Table I kernel suite (both mapper modes, unroll 1 and 2 on
 * the 6x6 prototype fabric) plus a 12x12 scalability point, and
 * reports maps/sec, routes/sec (committed routes of the produced
 * mappings), heap allocation counts (global operator new interposer),
 * and peak RSS. Results are written as `BENCH_mapper.json` — the
 * repo's bench-JSON shape consumed by the perf trajectory
 * (`bench/results/`).
 *
 * Unlike the fig* binaries this tool deliberately bypasses the
 * mapping cache and google-benchmark: every map() call is a cold run
 * so allocation counts are exact and reproducible. By default maps
 * are sequential; `--map-threads N` switches the mapper to the
 * speculative portfolio search (same mappings byte-for-byte, see
 * DESIGN.md section 8) and reports per-case speculation stats —
 * attempts launched / cancelled / wasted. Allocation counts under the
 * portfolio include speculative work and are only reproducible in the
 * sequential default.
 *
 * `--prescreen` enables the multi-fidelity pre-screen (DESIGN.md
 * section 12) with one negative-attempt memo shared across the whole
 * run: the first repeat of a case records its attempt failures, later
 * repeats prune them, so with `--repeat >= 2` the best-of-N wall time
 * measures the *warm* negative-cache path. specPruned and
 * prescreenScoreUs land in the JSON; `--verify --prescreen`
 * additionally byte-compares every screened mapping against the
 * unscreened sequential scan and exits 1 on mismatch.
 *
 * Exit status: 0 on success, 1 on mapping failure or (with --verify)
 * an optimized-vs-reference mapping mismatch, 2 on usage error.
 */
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "exec/attempt_memo.hpp"
#include "exec/mapping_cache.hpp"
#include "kernels/registry.hpp"
#include "mapper/mapper.hpp"
#include "mapper/validate.hpp"
#include "trace/trace_cli.hpp"

// ---------------------------------------------------------------------
// Global allocation interposer: counts every heap allocation of the
// process. Counters are relaxed atomics so the interposer itself does
// not serialize anything (portfolio workers allocate concurrently).
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void *
countedAlloc(std::size_t size)
{
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace iced {
namespace {

struct CaseResult
{
    std::string kernel;
    int uf = 1;
    std::string mode; // "conventional" | "iced"
    std::string fabric;
    int ii = 0;
    int routes = 0;
    double wallMs = 0.0;
    std::uint64_t allocs = 0;
    std::uint64_t allocBytes = 0;
    // Portfolio speculation stats of the last repeat (deltas of the
    // mapper.portfolio.* counters around the timed map; all zero when
    // mapping sequentially).
    std::uint64_t specLaunched = 0;
    std::uint64_t specCancelled = 0;
    std::uint64_t specWasted = 0;
    // Pre-screen stats of the last repeat (deltas of
    // mapper.portfolio.attempts_pruned / mapper.prescreen.score_us).
    std::uint64_t specPruned = 0;
    std::uint64_t prescreenScoreUs = 0;
};

struct BenchCase
{
    const Kernel *kernel;
    int uf;
    bool dvfsAware;
    int fabricDim;
};

Cgra
makeFabric(int n)
{
    CgraConfig c;
    c.rows = n;
    c.cols = n;
    c.islandRows = 2;
    c.islandCols = 2;
    return Cgra(c);
}

int
routedEdges(const Mapping &m)
{
    int routes = 0;
    for (EdgeId e = 0; e < m.dfg().edgeCount(); ++e)
        if (m.route(e).edge != -1)
            ++routes;
    return routes;
}

long
peakRssKb()
{
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

/**
 * Map once with production options and once with the copy-based
 * reference candidate evaluation; any structural difference between
 * the two mappings is a bug in the transactional fast path.
 * Runs outside the timed region. Returns true on mismatch.
 */
bool
verifyAgainstReference(const Cgra &cgra, const Dfg &dfg,
                       const MapperOptions &opts)
{
    MapperOptions ref = opts;
    ref.referenceEvaluation = true;
    const auto optimized = Mapper(cgra, opts).tryMap(dfg);
    const auto reference = Mapper(cgra, ref).tryMap(dfg);
    if (optimized.has_value() != reference.has_value()) {
        std::cerr << "bench_mapper: VERIFY MISMATCH " << dfg.name()
                  << ": one evaluation mapped, the other did not\n";
        return true;
    }
    if (optimized && !equalMappings(*optimized, *reference)) {
        std::cerr << "bench_mapper: VERIFY MISMATCH " << dfg.name()
                  << ": optimized and reference mappings differ\n";
        return true;
    }
    return false;
}

/**
 * Portfolio determinism check: the parallel portfolio search must pick
 * the byte-identical mapping the sequential scan picks (outside the
 * timed region). Returns true on mismatch.
 */
bool
verifyPortfolioAgainstSequential(const Cgra &cgra, const Dfg &dfg,
                                 const MapperOptions &opts)
{
    MapperOptions seq = opts;
    seq.mapThreads = 1;
    const auto parallel = Mapper(cgra, opts).tryMap(dfg);
    const auto sequential = Mapper(cgra, seq).tryMap(dfg);
    if (parallel.has_value() != sequential.has_value()) {
        std::cerr << "bench_mapper: VERIFY MISMATCH " << dfg.name()
                  << ": portfolio and sequential disagree on"
                     " mappability\n";
        return true;
    }
    if (parallel && !equalMappings(*parallel, *sequential)) {
        std::cerr << "bench_mapper: VERIFY MISMATCH " << dfg.name()
                  << ": portfolio and sequential mappings differ\n";
        return true;
    }
    return false;
}

/**
 * Pre-screen admissibility check: the screened mapper (ranked
 * launches + warm negative memo from the timed repeats) must pick the
 * byte-identical mapping the unscreened sequential scan picks
 * (outside the timed region). Returns true on mismatch.
 */
bool
verifyPrescreenAgainstUnscreened(const Cgra &cgra, const Dfg &dfg,
                                 const MapperOptions &opts)
{
    MapperOptions plain = opts;
    plain.mapThreads = 1;
    plain.prescreen = {};
    const auto screened = Mapper(cgra, opts).tryMap(dfg);
    const auto unscreened = Mapper(cgra, plain).tryMap(dfg);
    if (screened.has_value() != unscreened.has_value()) {
        std::cerr << "bench_mapper: VERIFY MISMATCH " << dfg.name()
                  << ": screened and unscreened disagree on"
                     " mappability\n";
        return true;
    }
    if (screened && !equalMappings(*screened, *unscreened)) {
        std::cerr << "bench_mapper: VERIFY MISMATCH " << dfg.name()
                  << ": screened and unscreened mappings differ\n";
        return true;
    }
    return false;
}

/** The suite: Table I kernels x uf x mode on 6x6, plus 12x12 point. */
std::vector<BenchCase>
buildSuite(bool quick)
{
    std::vector<BenchCase> suite;
    for (const Kernel &k : kernelRegistry())
        for (int uf : {1, 2}) {
            if (quick && uf != 1)
                continue;
            for (bool dvfs : {false, true}) {
                if (quick && !dvfs)
                    continue;
                suite.push_back({&k, uf, dvfs, 6});
            }
        }
    if (!quick) {
        // Scalability point: a large fabric stresses candidate
        // enumeration and route spans (paper Fig. 12 direction).
        for (bool dvfs : {false, true})
            suite.push_back({&findKernel("fft"), 2, dvfs, 12});
    }
    return suite;
}

int
run(int repeat, bool quick, bool verify, int map_threads,
    bool prescreen, const std::string &out_path)
{
    const std::vector<BenchCase> suite = buildSuite(quick);
    MetricsRegistry::Counter &spec_launched =
        MetricsRegistry::global().counter(
            "mapper.portfolio.attempts_launched");
    MetricsRegistry::Counter &spec_cancelled =
        MetricsRegistry::global().counter(
            "mapper.portfolio.attempts_cancelled");
    MetricsRegistry::Counter &spec_wasted =
        MetricsRegistry::global().counter(
            "mapper.portfolio.attempts_wasted");
    MetricsRegistry::Counter &spec_pruned =
        MetricsRegistry::global().counter(
            "mapper.portfolio.attempts_pruned");
    MetricsRegistry::Counter &prescreen_score_us =
        MetricsRegistry::global().counter("mapper.prescreen.score_us");

    // Fabrics are shared per size (construction is not measured).
    Cgra cgra6 = makeFabric(6);
    Cgra cgra12 = makeFabric(12);

    // One negative-attempt memo for the whole run (--prescreen): the
    // first repeat of each case records failures, later repeats prune
    // them — the warm negative-cache path.
    MappingCache negative_cache(4);

    std::vector<CaseResult> results;
    int total_routes = 0;
    double total_ms = 0.0;
    std::uint64_t total_allocs = 0;
    std::uint64_t total_bytes = 0;
    int mismatches = 0;

    for (const BenchCase &bc : suite) {
        const Cgra &cgra = bc.fabricDim == 6 ? cgra6 : cgra12;
        const Dfg dfg = bc.kernel->build(bc.uf);
        MapperOptions opts;
        opts.dvfsAware = bc.dvfsAware;
        opts.mapThreads = map_threads;
        std::optional<NegativeAttemptMemo> memo;
        if (prescreen) {
            memo.emplace(negative_cache, dfg, cgra.config());
            opts.prescreen.enabled = true;
            opts.prescreen.memo = &*memo;
        }

        CaseResult r;
        r.kernel = bc.kernel->name;
        r.uf = bc.uf;
        r.mode = bc.dvfsAware ? "iced" : "conventional";
        r.fabric = std::to_string(bc.fabricDim) + "x" +
                   std::to_string(bc.fabricDim);

        // Best-of-N wall time; allocations are deterministic per map,
        // so the per-repeat delta is constant and reported once.
        double best_ms = 0.0;
        for (int rep = 0; rep < repeat; ++rep) {
            const std::uint64_t calls0 =
                g_alloc_calls.load(std::memory_order_relaxed);
            const std::uint64_t bytes0 =
                g_alloc_bytes.load(std::memory_order_relaxed);
            const std::uint64_t launched0 = spec_launched.value();
            const std::uint64_t cancelled0 = spec_cancelled.value();
            const std::uint64_t wasted0 = spec_wasted.value();
            const std::uint64_t pruned0 = spec_pruned.value();
            const std::uint64_t score0 = prescreen_score_us.value();
            const auto t0 = std::chrono::steady_clock::now();
            const Mapping m = Mapper(cgra, opts).map(dfg);
            const auto t1 = std::chrono::steady_clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (rep == 0 || ms < best_ms)
                best_ms = ms;
            r.allocs = g_alloc_calls.load(std::memory_order_relaxed) -
                       calls0;
            r.allocBytes =
                g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
            r.specLaunched = spec_launched.value() - launched0;
            r.specCancelled = spec_cancelled.value() - cancelled0;
            r.specWasted = spec_wasted.value() - wasted0;
            r.specPruned = spec_pruned.value() - pruned0;
            r.prescreenScoreUs = prescreen_score_us.value() - score0;
            r.ii = m.ii();
            r.routes = routedEdges(m);
        }
        r.wallMs = best_ms;

        if (verify && verifyAgainstReference(cgra, dfg, opts))
            ++mismatches;
        if (verify && map_threads > 1 &&
            verifyPortfolioAgainstSequential(cgra, dfg, opts))
            ++mismatches;
        if (verify && prescreen &&
            verifyPrescreenAgainstUnscreened(cgra, dfg, opts))
            ++mismatches;

        total_routes += r.routes;
        total_ms += r.wallMs;
        total_allocs += r.allocs;
        total_bytes += r.allocBytes;
        results.push_back(std::move(r));
        std::cerr << "bench_mapper: " << results.back().kernel << " x"
                  << results.back().uf << " " << results.back().mode
                  << " " << results.back().fabric << ": II "
                  << results.back().ii << ", "
                  << jsonNum(results.back().wallMs) << " ms, "
                  << results.back().allocs << " allocs\n";
    }

    const int maps = static_cast<int>(results.size());
    const double total_s = total_ms / 1000.0;

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "bench_mapper: cannot write " << out_path << "\n";
        return 2;
    }
    std::uint64_t total_spec_launched = 0;
    std::uint64_t total_spec_cancelled = 0;
    std::uint64_t total_spec_wasted = 0;
    std::uint64_t total_spec_pruned = 0;
    std::uint64_t total_score_us = 0;
    for (const CaseResult &r : results) {
        total_spec_launched += r.specLaunched;
        total_spec_cancelled += r.specCancelled;
        total_spec_wasted += r.specWasted;
        total_spec_pruned += r.specPruned;
        total_score_us += r.prescreenScoreUs;
    }

    out << "{\n"
        << "  \"tool\": \"bench_mapper\",\n"
        << "  \"suite\": \"" << (quick ? "table1-quick" : "table1+scale12")
        << "\",\n"
        << "  \"repeat\": " << repeat << ",\n"
        << "  \"mapThreads\": " << map_threads << ",\n"
        << "  \"prescreen\": " << (prescreen ? "true" : "false") << ",\n"
        << "  \"cases\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        out << "    {\"kernel\": \"" << r.kernel << "\", \"uf\": " << r.uf
            << ", \"mode\": \"" << r.mode << "\", \"fabric\": \""
            << r.fabric << "\", \"ii\": " << r.ii
            << ", \"routes\": " << r.routes
            << ", \"wallMs\": " << jsonNum(r.wallMs)
            << ", \"allocs\": " << r.allocs
            << ", \"allocBytes\": " << r.allocBytes;
        if (map_threads > 1)
            out << ", \"specLaunched\": " << r.specLaunched
                << ", \"specCancelled\": " << r.specCancelled
                << ", \"specWasted\": " << r.specWasted;
        if (prescreen)
            out << ", \"specPruned\": " << r.specPruned
                << ", \"prescreenScoreUs\": " << r.prescreenScoreUs;
        out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"metrics\": " << MetricsRegistry::global().toJson()
        << ",\n"
        << "  \"totals\": {\n"
        << "    \"maps\": " << maps << ",\n"
        << "    \"routes\": " << total_routes << ",\n"
        << "    \"wallMs\": " << jsonNum(total_ms) << ",\n"
        << "    \"mapsPerSec\": "
        << jsonNum(total_s > 0 ? maps / total_s : 0.0) << ",\n"
        << "    \"routesPerSec\": "
        << jsonNum(total_s > 0 ? total_routes / total_s : 0.0) << ",\n"
        << "    \"allocs\": " << total_allocs << ",\n"
        << "    \"allocBytes\": " << total_bytes << ",\n"
        << "    \"specLaunched\": " << total_spec_launched << ",\n"
        << "    \"specCancelled\": " << total_spec_cancelled << ",\n"
        << "    \"specWasted\": " << total_spec_wasted << ",\n"
        << "    \"specPruned\": " << total_spec_pruned << ",\n"
        << "    \"prescreenScoreUs\": " << total_score_us << ",\n"
        << "    \"peakRssKb\": " << peakRssKb() << "\n"
        << "  }\n"
        << "}\n";

    std::cout << "bench_mapper: " << maps << " maps, " << total_routes
              << " routes in " << jsonNum(total_ms) << " ms ("
              << jsonNum(total_s > 0 ? maps / total_s : 0.0)
              << " maps/s, "
              << jsonNum(total_s > 0 ? total_routes / total_s : 0.0)
              << " routes/s), " << total_allocs << " allocations, peak RSS "
              << peakRssKb() << " KB -> " << out_path << "\n";
    if (mismatches > 0) {
        std::cerr << "bench_mapper: " << mismatches
                  << " optimized-vs-reference mapping mismatches\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace iced

int
main(int argc, char **argv)
{
    iced::TraceCli trace;
    if (!trace.parse(argc, argv))
        return 2;
    int repeat = 1;
    bool quick = false;
    bool verify = false;
    bool prescreen = false;
    int map_threads = 1;
    std::string out_path = "BENCH_mapper.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--prescreen") {
            prescreen = true;
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else if (arg == "--map-threads" && i + 1 < argc) {
            map_threads = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: bench_mapper [--quick] [--verify]"
                   " [--prescreen] [--repeat N] [--map-threads N]"
                   " [--out FILE]\n"
                   "\n"
                   "  --quick        uf1 / ICED-mode subset (CI"
                   " perf-smoke)\n"
                   "  --verify       cross-check optimized vs reference\n"
                   "                 candidate evaluation — and, with\n"
                   "                 --map-threads > 1, portfolio vs\n"
                   "                 sequential byte-equality; with\n"
                   "                 --prescreen, screened vs unscreened\n"
                   "                 byte-equality (exit 1 on any\n"
                   "                 mapping mismatch)\n"
                   "  --prescreen    enable the multi-fidelity pre-screen\n"
                   "                 with a run-wide negative-attempt\n"
                   "                 memo (repeat >= 2 measures the warm\n"
                   "                 pruned path); adds specPruned /\n"
                   "                 prescreenScoreUs to the JSON\n"
                   "  --repeat       best-of-N wall time per case"
                   " (default 1)\n"
                   "  --map-threads  portfolio worker threads per map\n"
                   "                 (default 1 = sequential; adds\n"
                   "                 speculation stats to the JSON)\n"
                   "  --out          output JSON path (default"
                   " BENCH_mapper.json)\n"
                << iced::TraceCli::usageText();
            return 0;
        } else {
            std::cerr << "bench_mapper: unknown option '" << arg << "'\n";
            return 2;
        }
    }
    if (repeat < 1) {
        std::cerr << "bench_mapper: --repeat must be >= 1\n";
        return 2;
    }
    if (map_threads < 1) {
        std::cerr << "bench_mapper: --map-threads must be >= 1\n";
        return 2;
    }
    try {
        trace.begin();
        const int rc = iced::run(repeat, quick, verify, map_threads,
                                 prescreen, out_path);
        return trace.finish() ? rc : 2;
    } catch (const std::exception &e) {
        std::cerr << "bench_mapper: " << e.what() << "\n";
        return 1;
    }
}
