/**
 * @file
 * Ablation D (the paper's implicit extension): trading initiation
 * interval for energy. ICED never degrades performance, but several
 * kernels end at odd IIs (7, 13, 23) where no slow level divides the
 * II and only gating can save energy. Rounding the II up to the next
 * multiple of 4 re-enables relax/rest islands; this bench quantifies
 * that energy/performance trade per kernel (energy proxy: power x II
 * per iteration).
 */
#include "bench_util.hpp"

namespace iced {

void
runAblation()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    TableWriter table({"kernel", "II", "mW", "relaxed II", "mW",
                       "energy ratio", "slowdown"});
    Summary energy_ratio;
    for (const Kernel *k : singleKernels()) {
        Dfg dfg = k->build(2); // uf2 has the odd-II kernels
        Mapper mapper(cgra, MapperOptions{});
        Mapping best = mapper.map(dfg);
        const auto base = evaluateIced(best, model);
        const int relaxed_ii = ((best.ii() + 3) / 4) * 4;
        std::vector<std::string> row{
            k->name, std::to_string(best.ii()),
            TableWriter::num(base.power.totalMw, 1)};
        if (relaxed_ii == best.ii()) {
            row.insert(row.end(), {"-", "-", "1.00", "1.00"});
            energy_ratio.add(1.0);
        } else if (auto relaxed = mapper.tryMapAtIi(dfg, relaxed_ii)) {
            validateMapping(*relaxed);
            const auto slow = evaluateIced(*relaxed, model);
            const double e_base = base.power.totalMw * best.ii();
            const double e_slow =
                slow.power.totalMw * relaxed->ii();
            energy_ratio.add(e_base / e_slow);
            row.insert(
                row.end(),
                {std::to_string(relaxed->ii()),
                 TableWriter::num(slow.power.totalMw, 1),
                 TableWriter::num(e_base / e_slow, 2),
                 TableWriter::num(
                     double(relaxed->ii()) / best.ii(), 2)});
        } else {
            row.insert(row.end(), {"fail", "-", "-", "-"});
        }
        table.addRow(std::move(row));
    }
    std::cout << "\n=== Ablation D: rounding the II up to re-enable "
                 "slow islands (uf=2) ===\n";
    table.print(std::cout);
    std::cout << "mean energy-per-iteration ratio of relaxing: "
              << TableWriter::num(energy_ratio.mean(), 2)
              << "x (>1 would favor relaxing).\n"
                 "Finding: in this model the idle/static power of the "
                 "extra cycle outweighs the slow-island savings, "
                 "vindicating ICED's design rule of never trading II "
                 "for DVFS headroom.\n";
}

void
BM_RelaxedMap(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra();
    Dfg dfg = findKernel("spmv").build(2);
    Mapper mapper(cgra, MapperOptions{});
    for (auto _ : state) {
        auto m = mapper.tryMapAtIi(dfg, 8);
        benchmark::DoNotOptimize(m.has_value());
    }
}
BENCHMARK(BM_RelaxedMap)->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runAblation)
