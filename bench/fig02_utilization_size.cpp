/**
 * @file
 * Regenerates Figure 2: average tile utilization of conventional
 * mappings across CGRA sizes (4x4, 6x6, 8x8) at unroll factors 1 and
 * 2 - the under-utilization motivation. Utilization drops with fabric
 * size, and spmv/gemm drop further at unroll 2 because their RecMII
 * grows from 4 to 7.
 */
#include "bench_util.hpp"

#include "sim/activity.hpp"

namespace iced {

void
runFigure()
{
    TableWriter table({"kernel", "uf", "4x4 util", "6x6 util",
                       "8x8 util", "II@6x6"});
    for (const Kernel *k : singleKernels()) {
        for (int uf : {1, 2}) {
            std::vector<std::string> row{k->name, std::to_string(uf)};
            int ii6 = 0;
            for (int size : {4, 6, 8}) {
                Cgra cgra = bench::makeCgra(size);
                Dfg dfg = k->build(uf);
                MapperOptions conv;
                conv.dvfsAware = false;
                Mapping m = Mapper(cgra, conv).map(dfg);
                const FabricStats stats = computeFabricStats(
                    m, m.tileLevels(), UtilSemantics::Aligned);
                row.push_back(TableWriter::num(
                    100.0 * stats.avgUtilization, 1) + "%");
                if (size == 6)
                    ii6 = m.ii();
            }
            row.push_back(std::to_string(ii6));
            table.addRow(std::move(row));
        }
    }
    std::cout << "\n=== Figure 2: utilization vs CGRA size "
                 "(conventional mapping, no DVFS) ===\n";
    table.print(std::cout);
    std::cout << "\nPaper's shape: utilization decreases on larger "
                 "fabrics; spmv/gemm drop further at uf=2 (RecMII "
                 "4 -> 7).\n";
}

void
BM_ConventionalMap6x6(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra();
    const Kernel &k = *singleKernels()[state.range(0)];
    Dfg dfg = k.build(1);
    MapperOptions conv;
    conv.dvfsAware = false;
    for (auto _ : state) {
        Mapping m = Mapper(cgra, conv).map(dfg);
        benchmark::DoNotOptimize(m.ii());
    }
    state.SetLabel(k.name);
}
BENCHMARK(BM_ConventionalMap6x6)->DenseRange(0, 9)
    ->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
