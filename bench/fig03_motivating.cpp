/**
 * @file
 * Regenerates the Figure 3 motivating comparison: the synthetic
 * kernel of Figure 1 mapped on a 4x4 CGRA under (a) conventional
 * mapping, (b) per-tile DVFS on that mapping, (c) per-island DVFS on
 * the conventional mapping (no DVFS-aware placement: islands holding
 * critical nodes cannot slow down), and (d/e) the ICED DVFS-aware
 * mapping with per-island DVFS. The paper reports ~1.14x power
 * improvement of (e) over (a).
 */
#include "bench_util.hpp"

namespace iced {

void
runFigure()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra(4);
    const Dfg dfg = buildSyntheticKernel();

    MapperOptions conv;
    conv.dvfsAware = false;
    Mapping conventional = Mapper(cgra, conv).map(dfg);
    Mapping iced_map = Mapper(cgra, MapperOptions{}).map(dfg);
    validateMapping(conventional);
    validateMapping(iced_map);

    const KernelEvaluation evals[4] = {
        evaluateBaseline(conventional, model),
        evaluatePerTileDvfs(conventional, model),
        // (c): per-island hardware on the conventional mapping; all
        // used islands stay normal, unused islands gate.
        [&] {
            auto e = evaluateIced(conventional, model);
            e.design = "per-island on conventional";
            return e;
        }(),
        evaluateIced(iced_map, model),
    };

    TableWriter table({"design", "II", "avg util", "avg DVFS level",
                       "power (mW)", "vs (a)"});
    for (const KernelEvaluation &e : evals) {
        table.addRow(
            {e.design, std::to_string(e.ii),
             TableWriter::num(100 * e.stats.avgUtilization, 1) + "%",
             TableWriter::num(100 * e.stats.avgDvfsFraction, 1) + "%",
             TableWriter::num(e.power.totalMw, 1),
             TableWriter::num(evals[0].power.totalMw / e.power.totalMw,
                              2) +
                 "x"});
    }
    std::cout << "\n=== Figure 3: motivating example, synthetic "
                 "kernel on 4x4 ===\n";
    table.print(std::cout);

    std::cout << "\nICED island levels: ";
    for (IslandId i = 0; i < cgra.islandCount(); ++i) {
        Mapping gated = iced_map;
        (void)gated;
        std::cout << "island" << i << "="
                  << toString(iced_map.islandLevel(i)) << " ";
    }
    std::cout << "\n" << iced_map.describe() << "\n";
    std::cout << "Paper: per-island DVFS on the DVFS-aware mapping "
                 "achieves ~1.14x power over the baseline with "
                 "per-tile-like utilization.\n";
}

void
BM_MotivatingMap(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra(4);
    const Dfg dfg = buildSyntheticKernel();
    for (auto _ : state) {
        Mapping m = Mapper(cgra, MapperOptions{}).map(dfg);
        benchmark::DoNotOptimize(m.ii());
    }
}
BENCHMARK(BM_MotivatingMap)->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
