/**
 * @file
 * Regenerates Figure 13: normalized energy-efficiency
 * (performance-per-watt, ICED over DRIPS) for the GCN and LU
 * streaming applications across 10-input adjustment windows. The
 * first 50 inputs profile the initial partition for both designs.
 * Paper averages: 1.12x (GCN) and 1.26x (LU).
 */
#include "bench_util.hpp"

#include "streaming/stream_sim.hpp"

namespace iced {

void
runFigure()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    for (const char *which : {"gcn", "lu"}) {
        Rng rng(42);
        const AppDef app = std::string(which) == "gcn"
                               ? makeGcnApp(rng, 150)
                               : makeLuApp(rng, 150);
        Partitioner part(cgra);
        const PartitionPlan iced_plan = part.plan(app, 50, true);
        const PartitionPlan drips_plan = part.plan(app, 50, false);

        const auto iced = simulateStream(app, part, iced_plan,
                                         StreamPolicy::IcedDvfs, model);
        const auto drips = simulateStream(app, part, drips_plan,
                                          StreamPolicy::Drips, model);

        TableWriter plan_table({"stage", "islands", "II"});
        for (const StagePlan &s : iced_plan.stages)
            plan_table.addRow({s.label, std::to_string(s.islands),
                               std::to_string(s.ii)});
        std::cout << "\n=== Figure 13 (" << which
                  << "): partition (profiled on first 50 inputs) "
                     "===\n";
        plan_table.print(std::cout);

        TableWriter series({"window", "inputs", "iced perf/W",
                            "drips perf/W", "normalized"});
        Summary ratio;
        const std::size_t windows = std::min(iced.windows.size(),
                                             drips.windows.size());
        for (std::size_t w = 0; w < windows; ++w) {
            const double r = iced.windows[w].inputsPerUj /
                             drips.windows[w].inputsPerUj;
            ratio.add(r);
            series.addRow(
                {std::to_string(w),
                 std::to_string(iced.windows[w].lastInput -
                                iced.windows[w].firstInput + 1),
                 TableWriter::num(iced.windows[w].inputsPerUj, 4),
                 TableWriter::num(drips.windows[w].inputsPerUj, 4),
                 TableWriter::num(r, 3)});
        }
        series.print(std::cout);
        std::cout << "average normalized energy-efficiency "
                     "(ICED/DRIPS): "
                  << TableWriter::num(ratio.mean(), 3)
                  << "x   makespan ratio: "
                  << TableWriter::num(
                         iced.makespanCycles / drips.makespanCycles, 3)
                  << "\n";
    }
    std::cout << "\nPaper: 1.12x (GCN), 1.26x (LU) at identical "
                 "throughput.\n";
}

void
BM_StreamSimulation(benchmark::State &state)
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    Rng rng(42);
    const AppDef app = makeGcnApp(rng, 150);
    Partitioner part(cgra);
    const PartitionPlan plan = part.plan(app, 50, true);
    for (auto _ : state) {
        const auto stats = simulateStream(app, part, plan,
                                          StreamPolicy::IcedDvfs,
                                          model);
        benchmark::DoNotOptimize(stats.energyUj);
    }
}
BENCHMARK(BM_StreamSimulation)->Unit(benchmark::kMicrosecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
