/**
 * @file
 * Ablation C: sensitivity of the streaming DVFS controller to the
 * adjustment-window length (the paper fixes 10 inputs to match
 * DRIPS). Short windows react faster but mispredict bursty inputs;
 * long windows leave savings on the table.
 */
#include "bench_util.hpp"

#include "streaming/stream_sim.hpp"

namespace iced {

void
runAblation()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    for (const char *which : {"gcn", "lu"}) {
        Rng rng(42);
        const AppDef app = std::string(which) == "gcn"
                               ? makeGcnApp(rng, 150)
                               : makeLuApp(rng, 150);
        Partitioner part(cgra);
        const PartitionPlan iced_plan = part.plan(app, 50, true);
        const PartitionPlan conv_plan = part.plan(app, 50, false);
        const auto stat = simulateStream(app, part, conv_plan,
                                         StreamPolicy::StaticNormal,
                                         model);
        TableWriter table({"window", "energy (uJ)", "vs static",
                           "makespan ratio"});
        for (int window : {1, 5, 10, 20, 50}) {
            const auto iced =
                simulateStream(app, part, iced_plan,
                               StreamPolicy::IcedDvfs, model, window);
            table.addRow(
                {std::to_string(window),
                 TableWriter::num(iced.energyUj, 1),
                 TableWriter::num(stat.energyUj / iced.energyUj, 3) +
                     "x",
                 TableWriter::num(
                     iced.makespanCycles / stat.makespanCycles, 3)});
        }
        std::cout << "\n=== Ablation C (" << which
                  << "): DVFS window length ===\n";
        table.print(std::cout);
    }
    std::cout << "\nThe paper uses a 10-input window (matching "
                 "DRIPS); ns-scale regulators would allow much finer "
                 "windows.\n";
}

void
BM_WindowSweep(benchmark::State &state)
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    Rng rng(42);
    const AppDef app = makeLuApp(rng, 150);
    Partitioner part(cgra);
    const PartitionPlan plan = part.plan(app, 50, true);
    for (auto _ : state) {
        const auto stats = simulateStream(
            app, part, plan, StreamPolicy::IcedDvfs, model,
            static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(stats.energyUj);
    }
}
BENCHMARK(BM_WindowSweep)->Arg(1)->Arg(10)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runAblation)
