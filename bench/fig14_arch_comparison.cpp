/**
 * @file
 * Regenerates Figure 14: power and performance of the FFT kernel on
 * ICED versus other published architectures. As in the paper, the
 * non-ICED points are literature-derived constants (HyCUBE A-SSCC'19,
 * RipTide MICRO'22, SNAFU as cited there); only the ICED point is
 * measured on this substrate. Cross-platform numbers are not directly
 * comparable (different nodes, tile counts, memory systems) - the
 * figure situates ICED's operating envelope.
 */
#include "bench_util.hpp"

#include "sim/simulator.hpp"

namespace iced {

void
runFigure()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    const Kernel &fft = findKernel("fft");
    bench::MappedKernel mk(cgra, fft, 1);
    Rng rng(42);
    const Workload w = fft.workload(rng);
    const SimResult sim =
        simulate(mk.iced, w.memory, SimOptions{w.iterations});
    const auto iced = evaluateIced(mk.iced, model);

    // Ops per cycle: mappable DFG nodes retire once per II.
    const double mops =
        static_cast<double>(mk.dfg.mappableNodeCount()) / mk.iced.ii() *
        model.config().nominalFreqMhz;
    const double mops_per_mw = mops / iced.power.totalMw;

    TableWriter table({"architecture", "tech", "power (mW)",
                       "perf (MOPS)", "MOPS/mW", "source"});
    table.addRow({"ICED 6x6 (this work)", "7nm model",
                  TableWriter::num(iced.power.totalMw, 1),
                  TableWriter::num(mops, 0),
                  TableWriter::num(mops_per_mw, 1), "measured"});
    // Literature-derived points, as the paper itself does.
    table.addRow({"HyCUBE 4x4 @0.9V", "40nm", "42.0", "1100",
                  "26.4", "A-SSCC'19"});
    table.addRow({"RipTide 6x6", "22nm", "0.3", "81", "270.0",
                  "MICRO'22"});
    table.addRow({"SNAFU 6x6", "28nm", "0.4", "72", "180.0",
                  "MICRO'21 (via RipTide)"});
    std::cout << "\n=== Figure 14: FFT power/performance across "
                 "architectures ===\n";
    table.print(std::cout);
    std::cout << "\nFFT run: II=" << mk.iced.ii() << ", "
              << sim.iterations << " iterations in " << sim.execCycles
              << " cycles; energy "
              << TableWriter::num(model.energyUj(iced.power.totalMw,
                                                 double(sim.execCycles)),
                                  3)
              << " uJ.\nNote: cross-platform comparison is "
                 "qualitative (different nodes/memories), as the "
                 "paper stresses.\n";
}

void
BM_FftEndToEnd(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra();
    const Kernel &fft = findKernel("fft");
    Rng rng(42);
    const Workload w = fft.workload(rng);
    bench::MappedKernel mk(cgra, fft, 1);
    for (auto _ : state) {
        const SimResult sim =
            simulate(mk.iced, w.memory, SimOptions{w.iterations});
        benchmark::DoNotOptimize(sim.execCycles);
    }
}
BENCHMARK(BM_FftEndToEnd)->Unit(benchmark::kMicrosecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
