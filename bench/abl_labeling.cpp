/**
 * @file
 * Ablation B: how much of ICED's energy win comes from Algorithm 1's
 * labeling versus plain island power-gating. Compares three variants
 * on the 6x6 fabric: gating only (conventional mapping + island
 * gating), ICED without rest labels (relax floor), and full ICED.
 */
#include "bench_util.hpp"

namespace iced {

KernelEvaluation
evaluateVariant(const Cgra &cgra, const Dfg &dfg,
                const MapperOptions &opts, const PowerModel &model,
                std::string name)
{
    Mapping m = Mapper(cgra, opts).map(dfg);
    validateMapping(m);
    auto eval = evaluateIced(m, model);
    eval.design = std::move(name);
    return eval;
}

void
runAblation()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    TableWriter table({"kernel", "gating only (mW)",
                       "relax floor (mW)", "full iced (mW)", "II"});
    Summary sums[3];
    for (const Kernel *k : singleKernels()) {
        Dfg dfg = k->build(2);
        MapperOptions gating_only;
        gating_only.dvfsAware = false;
        MapperOptions relax_floor;
        relax_floor.labeling.lowestLabel = DvfsLevel::Relax;
        const KernelEvaluation evals[3] = {
            evaluateVariant(cgra, dfg, gating_only, model,
                            "gating only"),
            evaluateVariant(cgra, dfg, relax_floor, model,
                            "relax floor"),
            evaluateVariant(cgra, dfg, MapperOptions{}, model,
                            "full iced"),
        };
        for (int i = 0; i < 3; ++i)
            sums[i].add(evals[i].power.totalMw);
        table.addRow({k->name,
                      TableWriter::num(evals[0].power.totalMw, 1),
                      TableWriter::num(evals[1].power.totalMw, 1),
                      TableWriter::num(evals[2].power.totalMw, 1),
                      std::to_string(evals[2].ii)});
    }
    table.addRow({"AVERAGE", TableWriter::num(sums[0].mean(), 1),
                  TableWriter::num(sums[1].mean(), 1),
                  TableWriter::num(sums[2].mean(), 1), "-"});
    std::cout << "\n=== Ablation B: labeling contribution (uf=2) "
                 "===\n";
    table.print(std::cout);
    std::cout << "full-ICED saving over gating-only: "
              << TableWriter::num(sums[0].mean() - sums[2].mean(), 1)
              << " mW; the rest-level labels contribute "
              << TableWriter::num(sums[1].mean() - sums[2].mean(), 1)
              << " mW of that.\n";
}

void
BM_LabelingPass(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra();
    Dfg dfg = findKernel("fft").build(2);
    for (auto _ : state) {
        const auto labels = labelDvfsLevels(dfg, cgra, 4);
        benchmark::DoNotOptimize(labels.restCount);
    }
}
BENCHMARK(BM_LabelingPass)->Unit(benchmark::kMicrosecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runAblation)
