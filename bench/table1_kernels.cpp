/**
 * @file
 * Regenerates Table I: per-kernel DFG statistics (nodes, edges,
 * RecMII) at unroll factors 1 and 2, side by side with the published
 * values, plus the II this toolchain achieves on the 6x6 prototype.
 */
#include "bench_util.hpp"

#include "dfg/cycle_analysis.hpp"

namespace iced {

int
nonConstEdges(const Dfg &dfg)
{
    int edges = 0;
    for (const DfgEdge &e : dfg.edges())
        if (dfg.node(e.src).op != Opcode::Const)
            ++edges;
    return edges;
}

void
runTable()
{
    Cgra cgra = bench::makeCgra();
    TableWriter table({"kernel", "domain", "uf", "nodes", "paper",
                       "edges", "paper", "RecMII", "paper",
                       "achieved II"});
    for (const Kernel &k : kernelRegistry()) {
        for (int uf : {1, 2}) {
            const auto &paper = uf == 1 ? k.paperUf1 : k.paperUf2;
            Dfg dfg = k.build(uf);
            MapperOptions conv;
            conv.dvfsAware = false;
            Mapping m = Mapper(cgra, conv).map(dfg);
            table.addRow({k.name, k.domain, std::to_string(uf),
                          std::to_string(dfg.mappableNodeCount()),
                          std::to_string(paper.nodes),
                          std::to_string(nonConstEdges(dfg)),
                          std::to_string(paper.edges),
                          std::to_string(computeRecMii(dfg)),
                          std::to_string(paper.recMii),
                          std::to_string(m.ii())});
        }
    }
    std::cout << "\n=== Table I: target workloads (ours vs paper) ===\n";
    table.print(std::cout);
}

void
BM_DfgConstruction(benchmark::State &state)
{
    const Kernel &k = kernelRegistry()[state.range(0)];
    for (auto _ : state) {
        Dfg dfg = k.build(1);
        benchmark::DoNotOptimize(dfg.nodeCount());
    }
    state.SetLabel(k.name);
}
BENCHMARK(BM_DfgConstruction)->DenseRange(0, 9);

void
BM_RecMii(benchmark::State &state)
{
    Dfg dfg = kernelRegistry()[state.range(0)].build(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(computeRecMii(dfg));
}
BENCHMARK(BM_RecMii)->DenseRange(0, 9);

} // namespace iced

ICED_BENCH_MAIN(iced::runTable)
