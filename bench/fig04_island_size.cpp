/**
 * @file
 * Regenerates Figure 4: normalized performance (baseline II / ICED
 * II) on an 8x8 CGRA for DVFS island sizes 1x1, 2x2, 3x3, 4x4. The
 * paper reports no degradation at 2x2 and increasing slowdowns for
 * larger islands (bigger islands constrain placement).
 *
 * The sweep (10 kernels x 5 mapper runs) is dispatched through the
 * exec ExperimentRunner: cells map in parallel, the table is emitted
 * in grid order, so the output is identical at any thread count.
 */
#include "bench_util.hpp"

namespace iced {

void
runFigure()
{
    const std::vector<int> island_sizes{1, 2, 3, 4};

    // Grid: per kernel, the no-DVFS baseline followed by the four
    // island geometries, all on the 8x8 fabric.
    std::vector<JobSpec> grid;
    for (const Kernel *k : singleKernels()) {
        JobSpec base;
        base.kernel = k->name;
        base.fabric = bench::makeCgra(8).config();
        base.options = bench::conventionalOptions();
        base.variant = "baseline";
        grid.push_back(base);
        for (int island : island_sizes) {
            JobSpec cell;
            cell.kernel = k->name;
            cell.fabric = bench::makeCgra(8, island, island).config();
            cell.variant = std::to_string(island) + "x" +
                           std::to_string(island);
            grid.push_back(cell);
        }
    }

    ExperimentRunner runner;
    const std::vector<JobResult> results = runner.run(grid);

    TableWriter table({"kernel", "no-DVFS II", "1x1", "2x2", "3x3",
                       "4x4"});
    Summary geo[4];
    const std::size_t stride = 1 + island_sizes.size();
    for (std::size_t row = 0; row * stride < results.size(); ++row) {
        const JobResult &base = results[row * stride];
        fatalIf(!base.mapped(), "fig04: baseline map of '",
                base.spec.kernel, "' failed: ", base.error);
        const int base_ii = base.mapping().ii();
        std::vector<std::string> cells{base.spec.kernel,
                                       std::to_string(base_ii)};
        for (std::size_t j = 0; j < island_sizes.size(); ++j) {
            const JobResult &cell = results[row * stride + 1 + j];
            fatalIf(!cell.mapped(), "fig04: ICED map of '",
                    cell.spec.kernel, "' (", cell.spec.variant,
                    ") failed: ", cell.error);
            validateMapping(cell.mapping());
            const double normalized =
                static_cast<double>(base_ii) / cell.mapping().ii();
            cells.push_back(TableWriter::num(normalized, 2));
            geo[j].add(normalized);
        }
        table.addRow(std::move(cells));
    }
    std::cout << "\n=== Figure 4: normalized performance vs DVFS "
                 "island size (8x8 CGRA) ===\n";
    table.print(std::cout);
    std::cout << "\naverage: ";
    const char *names[] = {"1x1", "2x2", "3x3", "4x4"};
    for (int i = 0; i < 4; ++i)
        std::cout << names[i] << "="
                  << TableWriter::num(geo[i].mean(), 2) << "  ";
    std::cout << "\nPaper's shape: 2x2 matches the no-DVFS baseline; "
                 "larger islands degrade.\n";
}

void
BM_IcedMap8x8(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra(8, state.range(0), state.range(0));
    Dfg dfg = findKernel("conv").build(1);
    for (auto _ : state) {
        Mapping m = Mapper(cgra, MapperOptions{}).map(dfg);
        benchmark::DoNotOptimize(m.ii());
    }
}
BENCHMARK(BM_IcedMap8x8)->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
