/**
 * @file
 * Regenerates Figure 4: normalized performance (baseline II / ICED
 * II) on an 8x8 CGRA for DVFS island sizes 1x1, 2x2, 3x3, 4x4. The
 * paper reports no degradation at 2x2 and increasing slowdowns for
 * larger islands (bigger islands constrain placement).
 */
#include "bench_util.hpp"

namespace iced {

void
runFigure()
{
    TableWriter table({"kernel", "no-DVFS II", "1x1", "2x2", "3x3",
                       "4x4"});
    Summary geo[4];
    for (const Kernel *k : singleKernels()) {
        Dfg dfg = k->build(1);
        Cgra base = bench::makeCgra(8);
        MapperOptions conv;
        conv.dvfsAware = false;
        const int base_ii = Mapper(base, conv).map(dfg).ii();
        std::vector<std::string> row{k->name,
                                     std::to_string(base_ii)};
        int idx = 0;
        for (int island : {1, 2, 3, 4}) {
            Cgra cgra = bench::makeCgra(8, island, island);
            Mapping m = Mapper(cgra, MapperOptions{}).map(dfg);
            validateMapping(m);
            const double normalized =
                static_cast<double>(base_ii) / m.ii();
            row.push_back(TableWriter::num(normalized, 2));
            geo[idx++].add(normalized);
        }
        table.addRow(std::move(row));
    }
    std::cout << "\n=== Figure 4: normalized performance vs DVFS "
                 "island size (8x8 CGRA) ===\n";
    table.print(std::cout);
    std::cout << "\naverage: ";
    const char *names[] = {"1x1", "2x2", "3x3", "4x4"};
    for (int i = 0; i < 4; ++i)
        std::cout << names[i] << "="
                  << TableWriter::num(geo[i].mean(), 2) << "  ";
    std::cout << "\nPaper's shape: 2x2 matches the no-DVFS baseline; "
                 "larger islands degrade.\n";
}

void
BM_IcedMap8x8(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra(8, state.range(0), state.range(0));
    Dfg dfg = findKernel("conv").build(1);
    for (auto _ : state) {
        Mapping m = Mapper(cgra, MapperOptions{}).map(dfg);
        benchmark::DoNotOptimize(m.ii());
    }
}
BENCHMARK(BM_IcedMap8x8)->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
