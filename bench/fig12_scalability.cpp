/**
 * @file
 * Regenerates Figure 12: average DVFS level of per-tile DVFS vs ICED
 * (2x2 islands) across CGRA sizes 2x2, 4x4, 6x6, 8x8. The paper's
 * point: islandization tracks the per-tile solution as fabrics grow
 * (small kernels leave more islands to gate on large fabrics).
 */
#include "bench_util.hpp"

namespace iced {

void
runFigure()
{
    PowerModel model;
    TableWriter table({"CGRA", "per-tile dvfs", "iced (2x2)",
                       "kernels"});
    for (int size : {2, 4, 6, 8}) {
        Cgra cgra = bench::makeCgra(size);
        Summary tile_sum, iced_sum;
        int mapped = 0;
        for (const Kernel *k : singleKernels()) {
            // On tiny fabrics some kernels do not fit; skip those.
            Dfg dfg = k->build(1);
            MapperOptions conv;
            conv.dvfsAware = false;
            conv.maxIiSteps = 24;
            auto conventional = Mapper(cgra, conv).tryMap(dfg);
            if (!conventional)
                continue;
            MapperOptions io;
            io.maxIiSteps = 24;
            auto iced_map = Mapper(cgra, io).tryMap(dfg);
            if (!iced_map)
                continue;
            const auto tile =
                evaluatePerTileDvfs(*conventional, model);
            const auto iced = evaluateIced(*iced_map, model);
            tile_sum.add(tile.stats.avgDvfsFraction);
            iced_sum.add(iced.stats.avgDvfsFraction);
            ++mapped;
        }
        table.addRow({std::to_string(size) + "x" +
                          std::to_string(size),
                      TableWriter::num(100 * tile_sum.mean(), 1) + "%",
                      TableWriter::num(100 * iced_sum.mean(), 1) + "%",
                      std::to_string(mapped) + "/10"});
    }
    std::cout << "\n=== Figure 12: average DVFS level vs CGRA size "
                 "===\n";
    table.print(std::cout);
    std::cout << "\nPaper: 35% (ICED) vs 26% (per-tile) on 6x6 "
                 "without unrolling; both shrink as fabrics grow.\n";
}

void
BM_MapAcrossSizes(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra(static_cast<int>(state.range(0)));
    Dfg dfg = findKernel("relu").build(1);
    for (auto _ : state) {
        auto m = Mapper(cgra, MapperOptions{}).tryMap(dfg);
        benchmark::DoNotOptimize(m.has_value());
    }
}
BENCHMARK(BM_MapAcrossSizes)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
