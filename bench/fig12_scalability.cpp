/**
 * @file
 * Regenerates Figure 12: average DVFS level of per-tile DVFS vs ICED
 * (2x2 islands) across CGRA sizes 2x2, 4x4, 6x6, 8x8. The paper's
 * point: islandization tracks the per-tile solution as fabrics grow
 * (small kernels leave more islands to gate on large fabrics).
 *
 * The sweep (4 sizes x 10 kernels x {conventional, iced}) runs on the
 * exec ExperimentRunner; per-cell no-fits (tiny fabrics) are isolated
 * as NoFit results and skipped exactly like the serial version did.
 */
#include "bench_util.hpp"

namespace iced {

void
runFigure()
{
    const std::vector<int> sizes{2, 4, 6, 8};

    MapperOptions conv = bench::conventionalOptions();
    conv.maxIiSteps = 24;
    MapperOptions io;
    io.maxIiSteps = 24;

    std::vector<CgraConfig> fabrics;
    for (int size : sizes)
        fabrics.push_back(bench::makeCgra(size).config());
    const std::vector<JobSpec> grid = ExperimentRunner::makeGrid(
        bench::singleKernelNames(), {1}, fabrics,
        {{"conventional", conv}, {"iced", io}});

    ExperimentRunner runner;
    const std::vector<JobResult> results = runner.run(grid);

    // makeGrid nests kernel > fabric > variant: cell index =
    // ((kernel * sizes + size) * 2 + variant).
    PowerModel model;
    TableWriter table({"CGRA", "per-tile dvfs", "iced (2x2)",
                       "kernels"});
    const std::size_t kernel_count = bench::singleKernelNames().size();
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        Summary tile_sum, iced_sum;
        int mapped = 0;
        for (std::size_t k = 0; k < kernel_count; ++k) {
            const std::size_t base = (k * sizes.size() + s) * 2;
            const JobResult &conventional = results[base];
            const JobResult &iced_cell = results[base + 1];
            // On tiny fabrics some kernels do not fit; skip those.
            if (!conventional.mapped() || !iced_cell.mapped())
                continue;
            const auto tile =
                evaluatePerTileDvfs(conventional.mapping(), model);
            const auto iced = evaluateIced(iced_cell.mapping(), model);
            tile_sum.add(tile.stats.avgDvfsFraction);
            iced_sum.add(iced.stats.avgDvfsFraction);
            ++mapped;
        }
        table.addRow({std::to_string(sizes[s]) + "x" +
                          std::to_string(sizes[s]),
                      TableWriter::num(100 * tile_sum.mean(), 1) + "%",
                      TableWriter::num(100 * iced_sum.mean(), 1) + "%",
                      std::to_string(mapped) + "/10"});
    }
    std::cout << "\n=== Figure 12: average DVFS level vs CGRA size "
                 "===\n";
    table.print(std::cout);
    std::cout << "\nPaper: 35% (ICED) vs 26% (per-tile) on 6x6 "
                 "without unrolling; both shrink as fabrics grow.\n";
}

void
BM_MapAcrossSizes(benchmark::State &state)
{
    Cgra cgra = bench::makeCgra(static_cast<int>(state.range(0)));
    Dfg dfg = findKernel("relu").build(1);
    for (auto _ : state) {
        auto m = Mapper(cgra, MapperOptions{}).tryMap(dfg);
        benchmark::DoNotOptimize(m.has_value());
    }
}
BENCHMARK(BM_MapAcrossSizes)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
