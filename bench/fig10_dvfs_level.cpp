/**
 * @file
 * Regenerates Figure 10: average DVFS level across tiles (normal =
 * 100%, relax = 50%, rest = 25%, power-gated = 0%) for the per-tile
 * design and ICED, 6x6 prototype, unroll 1 and 2. The paper reports
 * 35% vs 26% (uf 1) and 53% vs 37% (uf 2): ICED sits at *higher*
 * average levels than per-tile DVFS while consuming less power (Fig.
 * 11), because islandization avoids the per-tile controller tax.
 */
#include "bench_util.hpp"

namespace iced {

void
runFigure()
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    for (int uf : {1, 2}) {
        TableWriter table(
            {"kernel", "per-tile dvfs", "iced (2x2 islands)"});
        Summary tile_sum, iced_sum;
        for (const Kernel *k : singleKernels()) {
            bench::MappedKernel mk(cgra, *k, uf);
            const auto tile =
                evaluatePerTileDvfs(mk.conventional, model);
            const auto iced = evaluateIced(mk.iced, model);
            tile_sum.add(tile.stats.avgDvfsFraction);
            iced_sum.add(iced.stats.avgDvfsFraction);
            table.addRow(
                {k->name,
                 TableWriter::num(100 * tile.stats.avgDvfsFraction, 1) +
                     "%",
                 TableWriter::num(100 * iced.stats.avgDvfsFraction, 1) +
                     "%"});
        }
        table.addRow({"AVERAGE",
                      TableWriter::num(100 * tile_sum.mean(), 1) + "%",
                      TableWriter::num(100 * iced_sum.mean(), 1) +
                          "%"});
        std::cout << "\n=== Figure 10 (uf=" << uf
                  << "): average DVFS level across tiles ===\n";
        table.print(std::cout);
    }
    std::cout << "\nPaper: per-tile 26%/37%, ICED 35%/53% (uf 1/2); "
                 "gated tiles count as 0%.\n";
}

void
BM_PerTilePass(benchmark::State &state)
{
    PowerModel model;
    Cgra cgra = bench::makeCgra();
    bench::MappedKernel mk(cgra, findKernel("gemm"), 2);
    for (auto _ : state) {
        const auto tile = evaluatePerTileDvfs(mk.conventional, model);
        benchmark::DoNotOptimize(tile.stats.avgDvfsFraction);
    }
}
BENCHMARK(BM_PerTilePass)->Unit(benchmark::kMillisecond);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
