/**
 * @file
 * `bench_sim` — cycle-simulator engine microbenchmark.
 *
 * Simulates one fixed small kernel (fir, unroll 1) mapped onto a
 * sweep of fabric sizes (6x6 up to 32x32) with both engines — the
 * event/interval core and the dense busy-bitmap reference — and
 * reports per-run wall time, busy-structure footprint, and the
 * event/dense speedup. Because the kernel (and hence the mapped work)
 * is fixed while the fabric grows, the sweep separates the two cost
 * models: the dense engine allocates and scans a tileCount x horizon
 * bitmap, so its cost tracks fabric area; the event engine touches
 * only the tiles the mapping uses, so its cost tracks mapped work.
 *
 * Results are written as `BENCH_sim.json` (the repo's bench-JSON
 * shape, see bench/results/). `--verify` additionally cross-checks
 * the two engines' SimResults for byte-identity at every size.
 *
 * Exit status: 0 on success, 1 on a cross-engine divergence under
 * --verify, 2 on usage error.
 */
#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "kernels/registry.hpp"
#include "mapper/mapper.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_cli.hpp"

namespace iced {
namespace {

struct SizeResult
{
    int dim = 0;
    int tiles = 0;
    int ii = 0;
    long execCycles = 0;
    double eventMs = 0.0;
    double denseMs = 0.0;
    double speedup = 0.0;
    std::uint64_t eventBusyBytes = 0;
    std::uint64_t denseBusyBytes = 0;
    std::uint64_t eventIntervals = 0;
};

Cgra
makeFabric(int n)
{
    CgraConfig c;
    c.rows = n;
    c.cols = n;
    c.islandRows = 2;
    c.islandCols = 2;
    return Cgra(c);
}

long
peakRssKb()
{
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

std::string
jsonNum(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return os.str();
}

/**
 * Best-of-N wall time of one simulate() configuration, in ms per run.
 * Each timed sample batches enough runs to stay well above the clock
 * granularity (batch size calibrated once from a warmup run).
 */
double
timeEngine(const Mapping &m, const std::vector<std::int64_t> &memory,
           const SimOptions &opts, int repeat)
{
    using clock = std::chrono::steady_clock;
    const auto w0 = clock::now();
    (void)simulate(m, memory, opts);
    const double warm_ms =
        std::chrono::duration<double, std::milli>(clock::now() - w0)
            .count();
    const int batch = std::max(
        1, std::min(200, static_cast<int>(2.0 / std::max(
                                                    warm_ms, 1e-6))));
    double best_ms = 0.0;
    for (int rep = 0; rep < repeat; ++rep) {
        const auto t0 = clock::now();
        for (int i = 0; i < batch; ++i)
            (void)simulate(m, memory, opts);
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count() /
            batch;
        if (rep == 0 || ms < best_ms)
            best_ms = ms;
    }
    return best_ms;
}

int
run(int repeat, bool quick, bool verify, const std::string &engines,
    const std::string &out_path)
{
    // "both" times the two engines and reports per-size speedups;
    // "event"/"dense" time one engine only (the before/after snapshots
    // committed under bench/results/ — the dense engine is the
    // pre-event simulate() algorithm verbatim, so a dense-only run is
    // the honest "before" cost).
    const bool time_event = engines != "dense";
    const bool time_dense = engines != "event";
    const std::vector<int> sizes =
        quick ? std::vector<int>{6, 16}
              : std::vector<int>{6, 8, 12, 16, 24, 32};

    // Fixed kernel and workload: the mapped work is identical at every
    // size, so any cost growth along the sweep is pure fabric scaling.
    // The trip count is kept small (never above the workload's own, so
    // memory accesses stay in bounds): the functional core is shared
    // by both engines, and a long run would drown the accounting
    // contrast the sweep exists to measure.
    const Kernel &kernel = findKernel("fir");
    Rng rng(1);
    const Workload w = kernel.workload(rng);
    const int iterations = std::min(8, w.iterations);

    MetricsRegistry::Counter &event_bytes =
        MetricsRegistry::global().counter("sim.engine.event.busy_bytes");
    MetricsRegistry::Counter &dense_bytes =
        MetricsRegistry::global().counter("sim.engine.dense.busy_bytes");
    MetricsRegistry::Counter &event_intervals =
        MetricsRegistry::global().counter("sim.engine.event.intervals");

    std::vector<SizeResult> results;
    int mismatches = 0;
    for (int dim : sizes) {
        const Cgra cgra = makeFabric(dim);
        Dfg dfg = kernel.build(1);
        const Mapping m = Mapper(cgra, MapperOptions{}).map(dfg);

        const SimOptions event_opts{iterations, SimEngine::Event};
        const SimOptions dense_opts{iterations,
                                    SimEngine::DenseReference};

        SizeResult r;
        r.dim = dim;
        r.tiles = cgra.tileCount();
        r.ii = m.ii();

        // One instrumented run per engine: per-run busy-structure
        // footprint from the metrics deltas, plus the --verify gate.
        const std::uint64_t eb0 = event_bytes.value();
        const std::uint64_t ei0 = event_intervals.value();
        const SimResult event = simulate(m, w.memory, event_opts);
        r.eventBusyBytes = event_bytes.value() - eb0;
        r.eventIntervals = event_intervals.value() - ei0;
        const std::uint64_t db0 = dense_bytes.value();
        const SimResult dense = simulate(m, w.memory, dense_opts);
        r.denseBusyBytes = dense_bytes.value() - db0;
        r.execCycles = event.execCycles;
        if (verify && !(event == dense)) {
            std::cerr << "bench_sim: VERIFY MISMATCH at " << dim << "x"
                      << dim << ": "
                      << describeDivergence(event, dense) << "\n";
            ++mismatches;
        }

        if (time_event)
            r.eventMs = timeEngine(m, w.memory, event_opts, repeat);
        if (time_dense)
            r.denseMs = timeEngine(m, w.memory, dense_opts, repeat);
        r.speedup = time_event && time_dense && r.eventMs > 0
                        ? r.denseMs / r.eventMs
                        : 0.0;
        results.push_back(r);
        std::cerr << "bench_sim: " << dim << "x" << dim << " (II "
                  << r.ii << "): event " << jsonNum(r.eventMs)
                  << " ms, dense " << jsonNum(r.denseMs) << " ms ("
                  << jsonNum(r.speedup) << "x), busy bytes "
                  << r.eventBusyBytes << " vs " << r.denseBusyBytes
                  << "\n";
    }

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "bench_sim: cannot write " << out_path << "\n";
        return 2;
    }
    out << "{\n"
        << "  \"tool\": \"bench_sim\",\n"
        << "  \"suite\": \"" << (quick ? "scale-quick" : "scale")
        << "\",\n"
        << "  \"kernel\": \"" << kernel.name << "\",\n"
        << "  \"iterations\": " << iterations << ",\n"
        << "  \"repeat\": " << repeat << ",\n"
        << "  \"engines\": \"" << engines << "\",\n"
        << "  \"verified\": " << (verify ? "true" : "false") << ",\n"
        << "  \"sizes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SizeResult &r = results[i];
        out << "    {\"fabric\": \"" << r.dim << "x" << r.dim
            << "\", \"tiles\": " << r.tiles << ", \"ii\": " << r.ii
            << ", \"execCycles\": " << r.execCycles
            << ", \"eventMs\": " << jsonNum(r.eventMs)
            << ", \"denseMs\": " << jsonNum(r.denseMs)
            << ", \"speedup\": " << jsonNum(r.speedup)
            << ", \"eventBusyBytes\": " << r.eventBusyBytes
            << ", \"denseBusyBytes\": " << r.denseBusyBytes
            << ", \"eventIntervals\": " << r.eventIntervals << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    const SizeResult &largest = results.back();
    out << "  ],\n"
        << "  \"metrics\": " << MetricsRegistry::global().toJson()
        << ",\n"
        << "  \"totals\": {\n"
        << "    \"sizes\": " << results.size() << ",\n"
        << "    \"largestFabric\": \"" << largest.dim << "x"
        << largest.dim << "\",\n"
        << "    \"largestSpeedup\": " << jsonNum(largest.speedup)
        << ",\n"
        << "    \"mismatches\": " << mismatches << ",\n"
        << "    \"peakRssKb\": " << peakRssKb() << "\n"
        << "  }\n"
        << "}\n";

    std::cout << "bench_sim: " << results.size() << " sizes, "
              << largest.dim << "x" << largest.dim << " speedup "
              << jsonNum(largest.speedup) << "x -> " << out_path
              << "\n";
    if (mismatches > 0) {
        std::cerr << "bench_sim: " << mismatches
                  << " cross-engine divergences\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace iced

int
main(int argc, char **argv)
{
    iced::TraceCli trace;
    if (!trace.parse(argc, argv))
        return 2;
    int repeat = 5;
    bool quick = false;
    bool verify = false;
    std::string engines = "both";
    std::string out_path = "BENCH_sim.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else if (arg == "--engine" && i + 1 < argc) {
            engines = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: bench_sim [--quick] [--verify] [--repeat N]"
                   " [--engine E] [--out FILE]\n"
                   "\n"
                   "  --quick    6x6 + 16x16 subset (CI sim-equiv"
                   " smoke)\n"
                   "  --verify   cross-check event vs dense-reference\n"
                   "             SimResults at every size (exit 1 on\n"
                   "             any divergence)\n"
                   "  --repeat   best-of-N wall time per engine"
                   " (default 5)\n"
                   "  --engine   which engine(s) to time: both\n"
                   "             (default, adds per-size speedups),\n"
                   "             event, or dense\n"
                   "  --out      output JSON path (default"
                   " BENCH_sim.json)\n"
                << iced::TraceCli::usageText();
            return 0;
        } else {
            std::cerr << "bench_sim: unknown option '" << arg << "'\n";
            return 2;
        }
    }
    if (repeat < 1) {
        std::cerr << "bench_sim: --repeat must be >= 1\n";
        return 2;
    }
    if (engines != "both" && engines != "event" && engines != "dense") {
        std::cerr << "bench_sim: --engine must be both, event, or"
                     " dense\n";
        return 2;
    }
    try {
        trace.begin();
        const int rc =
            iced::run(repeat, quick, verify, engines, out_path);
        return trace.finish() ? rc : 2;
    } catch (const std::exception &e) {
        std::cerr << "bench_sim: " << e.what() << "\n";
        return 1;
    }
}
