/**
 * @file
 * Regenerates Figure 8: area and power breakdown of the 6x6 ICED
 * CGRA from the calibrated models (the paper reports 6.63 mm^2 and
 * 113.95 mW average at 0.7 V / 434 MHz without SRAM macros; SRAM adds
 * 0.559 mm^2 / 62.653 mW at 22 nm).
 */
#include "bench_util.hpp"

#include "power/area_model.hpp"

namespace iced {

void
runFigure()
{
    PowerModel power;
    AreaModel area;

    const AreaBreakdown a =
        area.fabricArea(DvfsHardware::PerIsland, 36, 9, true);
    TableWriter at({"block", "area (mm^2)", "share"});
    const double core = a.totalMm2 - a.sramMm2;
    at.addRow({"36 tiles", TableWriter::num(a.tilesMm2, 3),
               TableWriter::num(100 * a.tilesMm2 / core, 1) + "%"});
    at.addRow({"9 island DVFS controllers (LDO+ADPLL)",
               TableWriter::num(a.dvfsOverheadMm2, 3),
               TableWriter::num(100 * a.dvfsOverheadMm2 / core, 1) +
                   "%"});
    at.addRow({"global (clock spine, command IF)",
               TableWriter::num(a.globalMm2, 3),
               TableWriter::num(100 * a.globalMm2 / core, 1) + "%"});
    at.addRow({"CGRA total (paper: 6.63)",
               TableWriter::num(core, 3), "100%"});
    at.addRow({"SRAM 32KB @22nm (paper: 0.559)",
               TableWriter::num(a.sramMm2, 3), "-"});
    std::cout << "\n=== Figure 8a: area breakdown, 6x6 ICED ===\n";
    at.print(std::cout);

    // Power at the nominal operating point with a representative 50%
    // average activity (the paper reports average power).
    double tiles_mw = 0.0;
    for (int t = 0; t < 36; ++t)
        tiles_mw += power.tilePowerMw(DvfsLevel::Normal, 0.5);
    const double ctl_mw =
        power.dvfsOverheadMw(DvfsHardware::PerIsland, 36, 9);
    TableWriter pt({"block", "power (mW)"});
    pt.addRow({"36 tiles @0.7V/434MHz, 50% activity",
               TableWriter::num(tiles_mw, 2)});
    pt.addRow({"9 island DVFS controllers",
               TableWriter::num(ctl_mw, 2)});
    pt.addRow({"CGRA total (paper: 113.95)",
               TableWriter::num(tiles_mw + ctl_mw, 2)});
    pt.addRow({"SRAM (paper: up to 62.653)",
               TableWriter::num(power.config().sramMw, 2)});
    std::cout << "\n=== Figure 8b: power breakdown, 6x6 ICED ===\n";
    pt.print(std::cout);

    std::cout << "\nOperating points: normal 0.7V/434MHz, relax "
                 "0.5V/217MHz, rest 0.42V/108.5MHz, power-gated.\n";
}

void
BM_TilePower(benchmark::State &state)
{
    PowerModel model;
    for (auto _ : state) {
        double mw = 0.0;
        for (int t = 0; t < 36; ++t)
            mw += model.tilePowerMw(DvfsLevel::Relax, 0.4);
        benchmark::DoNotOptimize(mw);
    }
}
BENCHMARK(BM_TilePower);

} // namespace iced

ICED_BENCH_MAIN(iced::runFigure)
