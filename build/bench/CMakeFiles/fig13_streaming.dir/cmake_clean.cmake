file(REMOVE_RECURSE
  "CMakeFiles/fig13_streaming.dir/fig13_streaming.cpp.o"
  "CMakeFiles/fig13_streaming.dir/fig13_streaming.cpp.o.d"
  "fig13_streaming"
  "fig13_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
