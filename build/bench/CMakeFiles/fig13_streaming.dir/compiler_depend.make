# Empty compiler generated dependencies file for fig13_streaming.
# This may be replaced when dependencies are built.
