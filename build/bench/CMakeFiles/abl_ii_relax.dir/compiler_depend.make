# Empty compiler generated dependencies file for abl_ii_relax.
# This may be replaced when dependencies are built.
