file(REMOVE_RECURSE
  "CMakeFiles/abl_ii_relax.dir/abl_ii_relax.cpp.o"
  "CMakeFiles/abl_ii_relax.dir/abl_ii_relax.cpp.o.d"
  "abl_ii_relax"
  "abl_ii_relax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ii_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
