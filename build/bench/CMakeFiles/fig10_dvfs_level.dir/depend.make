# Empty dependencies file for fig10_dvfs_level.
# This may be replaced when dependencies are built.
