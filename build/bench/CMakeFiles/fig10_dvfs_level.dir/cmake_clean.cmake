file(REMOVE_RECURSE
  "CMakeFiles/fig10_dvfs_level.dir/fig10_dvfs_level.cpp.o"
  "CMakeFiles/fig10_dvfs_level.dir/fig10_dvfs_level.cpp.o.d"
  "fig10_dvfs_level"
  "fig10_dvfs_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dvfs_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
