file(REMOVE_RECURSE
  "CMakeFiles/fig02_utilization_size.dir/fig02_utilization_size.cpp.o"
  "CMakeFiles/fig02_utilization_size.dir/fig02_utilization_size.cpp.o.d"
  "fig02_utilization_size"
  "fig02_utilization_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_utilization_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
