# Empty compiler generated dependencies file for fig02_utilization_size.
# This may be replaced when dependencies are built.
