file(REMOVE_RECURSE
  "CMakeFiles/abl_island_energy.dir/abl_island_energy.cpp.o"
  "CMakeFiles/abl_island_energy.dir/abl_island_energy.cpp.o.d"
  "abl_island_energy"
  "abl_island_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_island_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
