# Empty dependencies file for abl_island_energy.
# This may be replaced when dependencies are built.
