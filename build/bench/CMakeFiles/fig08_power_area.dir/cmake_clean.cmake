file(REMOVE_RECURSE
  "CMakeFiles/fig08_power_area.dir/fig08_power_area.cpp.o"
  "CMakeFiles/fig08_power_area.dir/fig08_power_area.cpp.o.d"
  "fig08_power_area"
  "fig08_power_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
