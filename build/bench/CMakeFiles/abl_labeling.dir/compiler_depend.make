# Empty compiler generated dependencies file for abl_labeling.
# This may be replaced when dependencies are built.
