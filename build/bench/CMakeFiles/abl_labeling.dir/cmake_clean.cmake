file(REMOVE_RECURSE
  "CMakeFiles/abl_labeling.dir/abl_labeling.cpp.o"
  "CMakeFiles/abl_labeling.dir/abl_labeling.cpp.o.d"
  "abl_labeling"
  "abl_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
