file(REMOVE_RECURSE
  "CMakeFiles/fig03_motivating.dir/fig03_motivating.cpp.o"
  "CMakeFiles/fig03_motivating.dir/fig03_motivating.cpp.o.d"
  "fig03_motivating"
  "fig03_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
