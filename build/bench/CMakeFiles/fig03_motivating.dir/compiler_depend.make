# Empty compiler generated dependencies file for fig03_motivating.
# This may be replaced when dependencies are built.
