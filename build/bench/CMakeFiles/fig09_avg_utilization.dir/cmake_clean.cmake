file(REMOVE_RECURSE
  "CMakeFiles/fig09_avg_utilization.dir/fig09_avg_utilization.cpp.o"
  "CMakeFiles/fig09_avg_utilization.dir/fig09_avg_utilization.cpp.o.d"
  "fig09_avg_utilization"
  "fig09_avg_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_avg_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
