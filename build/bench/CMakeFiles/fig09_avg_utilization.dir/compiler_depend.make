# Empty compiler generated dependencies file for fig09_avg_utilization.
# This may be replaced when dependencies are built.
