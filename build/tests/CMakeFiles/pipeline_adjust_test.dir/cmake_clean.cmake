file(REMOVE_RECURSE
  "CMakeFiles/pipeline_adjust_test.dir/pipeline_adjust_test.cpp.o"
  "CMakeFiles/pipeline_adjust_test.dir/pipeline_adjust_test.cpp.o.d"
  "pipeline_adjust_test"
  "pipeline_adjust_test.pdb"
  "pipeline_adjust_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_adjust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
