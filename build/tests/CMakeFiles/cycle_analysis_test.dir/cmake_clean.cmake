file(REMOVE_RECURSE
  "CMakeFiles/cycle_analysis_test.dir/cycle_analysis_test.cpp.o"
  "CMakeFiles/cycle_analysis_test.dir/cycle_analysis_test.cpp.o.d"
  "cycle_analysis_test"
  "cycle_analysis_test.pdb"
  "cycle_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
