file(REMOVE_RECURSE
  "CMakeFiles/mrrg_test.dir/mrrg_test.cpp.o"
  "CMakeFiles/mrrg_test.dir/mrrg_test.cpp.o.d"
  "mrrg_test"
  "mrrg_test.pdb"
  "mrrg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrrg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
