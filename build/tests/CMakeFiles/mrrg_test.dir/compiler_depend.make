# Empty compiler generated dependencies file for mrrg_test.
# This may be replaced when dependencies are built.
