# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dfg_test[1]_include.cmake")
include("/root/repo/build/tests/cycle_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/mrrg_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/mapper_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_adjust_test[1]_include.cmake")
