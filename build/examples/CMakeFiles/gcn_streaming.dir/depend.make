# Empty dependencies file for gcn_streaming.
# This may be replaced when dependencies are built.
