file(REMOVE_RECURSE
  "CMakeFiles/gcn_streaming.dir/gcn_streaming.cpp.o"
  "CMakeFiles/gcn_streaming.dir/gcn_streaming.cpp.o.d"
  "gcn_streaming"
  "gcn_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcn_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
