# Empty dependencies file for lu_streaming.
# This may be replaced when dependencies are built.
