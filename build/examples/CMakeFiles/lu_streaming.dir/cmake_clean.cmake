file(REMOVE_RECURSE
  "CMakeFiles/lu_streaming.dir/lu_streaming.cpp.o"
  "CMakeFiles/lu_streaming.dir/lu_streaming.cpp.o.d"
  "lu_streaming"
  "lu_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
