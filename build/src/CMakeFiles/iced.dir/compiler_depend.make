# Empty compiler generated dependencies file for iced.
# This may be replaced when dependencies are built.
