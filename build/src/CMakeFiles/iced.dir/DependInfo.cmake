
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cgra.cpp" "src/CMakeFiles/iced.dir/arch/cgra.cpp.o" "gcc" "src/CMakeFiles/iced.dir/arch/cgra.cpp.o.d"
  "/root/repo/src/arch/dvfs.cpp" "src/CMakeFiles/iced.dir/arch/dvfs.cpp.o" "gcc" "src/CMakeFiles/iced.dir/arch/dvfs.cpp.o.d"
  "/root/repo/src/arch/spm.cpp" "src/CMakeFiles/iced.dir/arch/spm.cpp.o" "gcc" "src/CMakeFiles/iced.dir/arch/spm.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/iced.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/iced.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/iced.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/iced.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/iced.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/iced.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table_writer.cpp" "src/CMakeFiles/iced.dir/common/table_writer.cpp.o" "gcc" "src/CMakeFiles/iced.dir/common/table_writer.cpp.o.d"
  "/root/repo/src/dfg/cycle_analysis.cpp" "src/CMakeFiles/iced.dir/dfg/cycle_analysis.cpp.o" "gcc" "src/CMakeFiles/iced.dir/dfg/cycle_analysis.cpp.o.d"
  "/root/repo/src/dfg/dfg.cpp" "src/CMakeFiles/iced.dir/dfg/dfg.cpp.o" "gcc" "src/CMakeFiles/iced.dir/dfg/dfg.cpp.o.d"
  "/root/repo/src/dfg/dot_export.cpp" "src/CMakeFiles/iced.dir/dfg/dot_export.cpp.o" "gcc" "src/CMakeFiles/iced.dir/dfg/dot_export.cpp.o.d"
  "/root/repo/src/dfg/interpreter.cpp" "src/CMakeFiles/iced.dir/dfg/interpreter.cpp.o" "gcc" "src/CMakeFiles/iced.dir/dfg/interpreter.cpp.o.d"
  "/root/repo/src/dfg/opcode.cpp" "src/CMakeFiles/iced.dir/dfg/opcode.cpp.o" "gcc" "src/CMakeFiles/iced.dir/dfg/opcode.cpp.o.d"
  "/root/repo/src/kernels/builder_util.cpp" "src/CMakeFiles/iced.dir/kernels/builder_util.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/builder_util.cpp.o.d"
  "/root/repo/src/kernels/embedded.cpp" "src/CMakeFiles/iced.dir/kernels/embedded.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/embedded.cpp.o.d"
  "/root/repo/src/kernels/gcn.cpp" "src/CMakeFiles/iced.dir/kernels/gcn.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/gcn.cpp.o.d"
  "/root/repo/src/kernels/hpc.cpp" "src/CMakeFiles/iced.dir/kernels/hpc.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/hpc.cpp.o.d"
  "/root/repo/src/kernels/lu.cpp" "src/CMakeFiles/iced.dir/kernels/lu.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/lu.cpp.o.d"
  "/root/repo/src/kernels/ml.cpp" "src/CMakeFiles/iced.dir/kernels/ml.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/ml.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/iced.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/synthetic.cpp" "src/CMakeFiles/iced.dir/kernels/synthetic.cpp.o" "gcc" "src/CMakeFiles/iced.dir/kernels/synthetic.cpp.o.d"
  "/root/repo/src/mapper/labeling.cpp" "src/CMakeFiles/iced.dir/mapper/labeling.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mapper/labeling.cpp.o.d"
  "/root/repo/src/mapper/mapper.cpp" "src/CMakeFiles/iced.dir/mapper/mapper.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mapper/mapper.cpp.o.d"
  "/root/repo/src/mapper/mapping.cpp" "src/CMakeFiles/iced.dir/mapper/mapping.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mapper/mapping.cpp.o.d"
  "/root/repo/src/mapper/per_tile_dvfs.cpp" "src/CMakeFiles/iced.dir/mapper/per_tile_dvfs.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mapper/per_tile_dvfs.cpp.o.d"
  "/root/repo/src/mapper/power_gating.cpp" "src/CMakeFiles/iced.dir/mapper/power_gating.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mapper/power_gating.cpp.o.d"
  "/root/repo/src/mapper/validate.cpp" "src/CMakeFiles/iced.dir/mapper/validate.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mapper/validate.cpp.o.d"
  "/root/repo/src/mrrg/mrrg.cpp" "src/CMakeFiles/iced.dir/mrrg/mrrg.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mrrg/mrrg.cpp.o.d"
  "/root/repo/src/mrrg/router.cpp" "src/CMakeFiles/iced.dir/mrrg/router.cpp.o" "gcc" "src/CMakeFiles/iced.dir/mrrg/router.cpp.o.d"
  "/root/repo/src/power/area_model.cpp" "src/CMakeFiles/iced.dir/power/area_model.cpp.o" "gcc" "src/CMakeFiles/iced.dir/power/area_model.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/iced.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/iced.dir/power/power_model.cpp.o.d"
  "/root/repo/src/power/report.cpp" "src/CMakeFiles/iced.dir/power/report.cpp.o" "gcc" "src/CMakeFiles/iced.dir/power/report.cpp.o.d"
  "/root/repo/src/sim/activity.cpp" "src/CMakeFiles/iced.dir/sim/activity.cpp.o" "gcc" "src/CMakeFiles/iced.dir/sim/activity.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/iced.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/iced.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/streaming/datasets.cpp" "src/CMakeFiles/iced.dir/streaming/datasets.cpp.o" "gcc" "src/CMakeFiles/iced.dir/streaming/datasets.cpp.o.d"
  "/root/repo/src/streaming/drips.cpp" "src/CMakeFiles/iced.dir/streaming/drips.cpp.o" "gcc" "src/CMakeFiles/iced.dir/streaming/drips.cpp.o.d"
  "/root/repo/src/streaming/dvfs_controller.cpp" "src/CMakeFiles/iced.dir/streaming/dvfs_controller.cpp.o" "gcc" "src/CMakeFiles/iced.dir/streaming/dvfs_controller.cpp.o.d"
  "/root/repo/src/streaming/partitioner.cpp" "src/CMakeFiles/iced.dir/streaming/partitioner.cpp.o" "gcc" "src/CMakeFiles/iced.dir/streaming/partitioner.cpp.o.d"
  "/root/repo/src/streaming/pipeline.cpp" "src/CMakeFiles/iced.dir/streaming/pipeline.cpp.o" "gcc" "src/CMakeFiles/iced.dir/streaming/pipeline.cpp.o.d"
  "/root/repo/src/streaming/stream_sim.cpp" "src/CMakeFiles/iced.dir/streaming/stream_sim.cpp.o" "gcc" "src/CMakeFiles/iced.dir/streaming/stream_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
