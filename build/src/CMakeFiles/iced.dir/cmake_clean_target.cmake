file(REMOVE_RECURSE
  "libiced.a"
)
