#!/usr/bin/env bash
# End-to-end smoke of the mapping service (the CI `service-smoke` job):
#
#  1. start iced_serve on a fresh persistent store and run a --verify
#     sweep (every served mapping byte-identical to a local tryMap);
#  2. SIGTERM the server and require a graceful drain (exit 0);
#  3. restart the server on the same store, run the identical sweep
#     again, and require >= 95% of the cells to be served from the
#     persistent tier — still byte-identical under --verify.
#
# Usage: service_smoke.sh <build-dir> [kernel] [unroll]
set -euo pipefail

build_dir=${1:?usage: service_smoke.sh <build-dir> [kernel] [unroll]}
kernel=${2:-gemm}
unroll=${3:-1}

serve=$build_dir/tools/iced_serve
client=$build_dir/tools/iced_client
work=$(mktemp -d)
socket=$work/iced.sock
store=$work/store
trap 'kill "$server_pid" 2>/dev/null; rm -rf "$work"' EXIT

wait_for_socket() {
    for _ in $(seq 1 100); do
        [ -S "$socket" ] && return 0
        sleep 0.1
    done
    echo "service_smoke: server did not create $socket" >&2
    return 1
}

echo "== first run: cold store, every cell computed =="
"$serve" --socket "$socket" --store "$store" &
server_pid=$!
wait_for_socket
"$client" --socket "$socket" sweep "$kernel" "$unroll" --verify \
    | tee "$work/run1.txt"

echo "== graceful drain on SIGTERM =="
kill -TERM "$server_pid"
wait "$server_pid" # non-zero exit fails the job via set -e
echo "service_smoke: drain exit 0"

echo "== second run: restarted server, persistent-tier serving =="
"$serve" --socket "$socket" --store "$store" &
server_pid=$!
wait_for_socket
"$client" --socket "$socket" sweep "$kernel" "$unroll" --verify \
    | tee "$work/run2.txt"
"$client" --socket "$socket" shutdown
wait "$server_pid"

# The two runs must produce identical per-cell outcome tables (only
# the serving tier may differ).
if ! diff <(grep -v '^served:' "$work/run1.txt" | sed 's/\[[a-z]*\]//') \
          <(grep -v '^served:' "$work/run2.txt" | sed 's/\[[a-z]*\]//'); then
    echo "service_smoke: FAIL — outcomes differ across restart" >&2
    exit 1
fi

grep -q "verify: all served mappings byte-identical" "$work/run1.txt"
grep -q "verify: all served mappings byte-identical" "$work/run2.txt"

# >= 95% of the restarted run must come from the persistent store.
summary=$(grep '^served:' "$work/run2.txt")
persistent=$(sed -E 's/.*persistent=([0-9]+).*/\1/' <<<"$summary")
total=$(sed -E 's/.*total=([0-9]+).*/\1/' <<<"$summary")
if [ $((persistent * 100)) -lt $((total * 95)) ]; then
    echo "service_smoke: FAIL — only $persistent/$total cells" \
         "persistent-served (need >= 95%)" >&2
    exit 1
fi
echo "service_smoke: PASS — $persistent/$total cells served from the" \
     "persistent store, byte-identical across restart"
