#!/usr/bin/env bash
# End-to-end smoke of the mapping service (the CI `service-smoke` job):
#
#  1. start iced_serve on a fresh persistent store and run a --verify
#     sweep (every served mapping byte-identical to a local tryMap);
#  2. SIGTERM the server and require a graceful drain (exit 0);
#  3. restart the server on the same store, run the identical sweep
#     again, and require >= 95% of the cells to be served from the
#     persistent tier — still byte-identical under --verify;
#  4. sharded scenario: two TCP back-ends on loopback ephemeral
#     ports, `design_space_explorer --server A,B` sweeping every
#     kernel, one back-end SIGKILLed the moment its store proves it
#     is mid-sweep — the sweep must complete through failover with
#     stdout byte-identical to a local (serverless) explorer run;
#  5. skewed scenario: one fast back-end (warm store from phase 4)
#     plus one --debug-cell-delay-ms straggler — the work-stealing
#     scheduler must record steals>0, nothing may die, and stdout
#     must again be byte-identical to the local run.
#
# Per-backend MetricsRegistry snapshots land in $SMOKE_ARTIFACT_DIR
# when that variable is set (the CI job uploads them as artifacts).
#
# Usage: service_smoke.sh <build-dir> [kernel] [unroll]
set -euo pipefail

build_dir=${1:?usage: service_smoke.sh <build-dir> [kernel] [unroll]}
kernel=${2:-gemm}
unroll=${3:-1}

serve=$build_dir/tools/iced_serve
client=$build_dir/tools/iced_client
explorer=$build_dir/examples/design_space_explorer
work=$(mktemp -d)
socket=$work/iced.sock
store=$work/store
server_pid=""
pid_a=""
pid_b=""
cleanup() {
    kill "$server_pid" "$pid_a" "$pid_b" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

wait_for_socket() {
    for _ in $(seq 1 100); do
        [ -S "$socket" ] && return 0
        sleep 0.1
    done
    echo "service_smoke: server did not create $socket" >&2
    return 1
}

echo "== first run: cold store, every cell computed =="
"$serve" --socket "$socket" --store "$store" &
server_pid=$!
wait_for_socket
"$client" --socket "$socket" sweep "$kernel" "$unroll" --verify \
    | tee "$work/run1.txt"

echo "== graceful drain on SIGTERM =="
kill -TERM "$server_pid"
wait "$server_pid" # non-zero exit fails the job via set -e
echo "service_smoke: drain exit 0"

echo "== second run: restarted server, persistent-tier serving =="
"$serve" --socket "$socket" --store "$store" &
server_pid=$!
wait_for_socket
"$client" --socket "$socket" sweep "$kernel" "$unroll" --verify \
    | tee "$work/run2.txt"
"$client" --socket "$socket" shutdown
wait "$server_pid"

# The two runs must produce identical per-cell outcome tables (only
# the serving tier may differ).
if ! diff <(grep -v '^served:' "$work/run1.txt" | sed 's/\[[a-z]*\]//') \
          <(grep -v '^served:' "$work/run2.txt" | sed 's/\[[a-z]*\]//'); then
    echo "service_smoke: FAIL — outcomes differ across restart" >&2
    exit 1
fi

grep -q "verify: all served mappings byte-identical" "$work/run1.txt"
grep -q "verify: all served mappings byte-identical" "$work/run2.txt"

# >= 95% of the restarted run must come from the persistent store.
summary=$(grep '^served:' "$work/run2.txt")
persistent=$(sed -E 's/.*persistent=([0-9]+).*/\1/' <<<"$summary")
total=$(sed -E 's/.*total=([0-9]+).*/\1/' <<<"$summary")
if [ $((persistent * 100)) -lt $((total * 95)) ]; then
    echo "service_smoke: FAIL — only $persistent/$total cells" \
         "persistent-served (need >= 95%)" >&2
    exit 1
fi
echo "service_smoke: PASS — $persistent/$total cells served from the" \
     "persistent store, byte-identical across restart"

echo "== sharded run: two TCP back-ends, one killed mid-sweep =="
# The reference: a serverless in-process sweep of every kernel. The
# explorer's stdout is thread-count-invariant, so this is the exact
# byte string the sharded run must reproduce.
"$explorer" all "$unroll" > "$work/local.txt" 2>/dev/null

"$serve" --listen 127.0.0.1:0 --store "$work/store_a" \
    --addr-file "$work/a.addr" --metrics-out "$work/metrics_a.json" &
pid_a=$!
"$serve" --listen 127.0.0.1:0 --store "$work/store_b" \
    --addr-file "$work/b.addr" --metrics-out "$work/metrics_b.json" &
pid_b=$!
for _ in $(seq 1 100); do
    [ -s "$work/a.addr" ] && [ -s "$work/b.addr" ] && break
    sleep 0.1
done
addr_a=$(cat "$work/a.addr")
addr_b=$(cat "$work/b.addr")
echo "service_smoke: back-ends on $addr_a and $addr_b"

"$explorer" --server "$addr_a,$addr_b" all "$unroll" \
    > "$work/sharded.txt" 2> "$work/sharded.err" &
explorer_pid=$!
# Kill back-end B the moment its store shows a write-behind entry:
# proof it is serving its shard, long before the shard completes.
for _ in $(seq 1 600); do
    if find "$work/store_b" -name '*.ic[mn]' 2>/dev/null | grep -q .; then
        break
    fi
    sleep 0.02
done
kill -KILL "$pid_b"
echo "service_smoke: SIGKILLed back-end B ($addr_b) mid-sweep"
if ! wait "$explorer_pid"; then
    cat "$work/sharded.err" >&2
    echo "service_smoke: FAIL — sharded sweep did not survive the kill" >&2
    exit 1
fi

# Stdout must be byte-identical to the local run despite the failover.
if ! diff "$work/local.txt" "$work/sharded.txt"; then
    echo "service_smoke: FAIL — sharded stdout differs from the" \
         "local run" >&2
    exit 1
fi

# The sharded client must have recorded the death and the failover.
shard_line=$(grep '^exec: shard ' "$work/sharded.err")
echo "service_smoke: $shard_line"
grep -q 'dead=1' <<<"$shard_line" || {
    echo "service_smoke: FAIL — expected exactly one dead backend" >&2
    exit 1
}
failovers=$(sed -E 's/.*failover=([0-9]+).*/\1/' <<<"$shard_line")
if [ "$failovers" -lt 1 ]; then
    echo "service_smoke: FAIL — kill landed but no failover counted" >&2
    exit 1
fi

# Drain the survivor so its metrics snapshot hits the disk.
"$client" --server "$addr_a" shutdown
wait "$pid_a"
pid_a=""
pid_b=""
echo "service_smoke: PASS — sharded sweep survived a mid-sweep" \
     "back-end kill with byte-identical output ($shard_line)"

echo "== skewed run: one delayed back-end, work stealing =="
# The fast back-end reuses phase 4's store (the survivor served nearly
# every cell, so it answers from the persistent tier); the straggler
# adds a scripted 150 ms to every cell it serves.
"$serve" --listen 127.0.0.1:0 --store "$work/store_a" \
    --addr-file "$work/c.addr" --metrics-out "$work/metrics_c.json" &
pid_a=$!
"$serve" --listen 127.0.0.1:0 --store "$work/store_d" \
    --addr-file "$work/d.addr" --metrics-out "$work/metrics_d.json" \
    --debug-cell-delay-ms 150 &
pid_b=$!
for _ in $(seq 1 100); do
    [ -s "$work/c.addr" ] && [ -s "$work/d.addr" ] && break
    sleep 0.1
done
addr_c=$(cat "$work/c.addr")
addr_d=$(cat "$work/d.addr")
echo "service_smoke: back-ends on $addr_c (fast) and $addr_d" \
     "(slow: +150ms/cell)"

# The probe the scheduler runs before dealing, exercised standalone.
"$client" ping "$addr_c"
"$client" ping "$addr_d"

"$explorer" --server "$addr_c,$addr_d" all "$unroll" \
    > "$work/skewed.txt" 2> "$work/skewed.err"

# Stdout must be byte-identical to the local run despite the skew.
if ! diff "$work/local.txt" "$work/skewed.txt"; then
    echo "service_smoke: FAIL — skewed-backend stdout differs from" \
         "the local run" >&2
    exit 1
fi

skew_line=$(grep '^exec: shard ' "$work/skewed.err")
echo "service_smoke: $skew_line"
grep -q 'dead=0' <<<"$skew_line" || {
    echo "service_smoke: FAIL — no backend may die in the skew phase" >&2
    exit 1
}
steals=$(sed -E 's/.*steals=([0-9]+).*/\1/' <<<"$skew_line")
if [ "$steals" -lt 1 ]; then
    echo "service_smoke: FAIL — skewed backend provoked no steals" >&2
    exit 1
fi

"$client" --server "$addr_c" shutdown
"$client" --server "$addr_d" shutdown
wait "$pid_a"
wait "$pid_b"
pid_a=""
pid_b=""

# Both back-ends served scheduler leases and answered health probes.
grep -q '"service.requests.sweep_chunk": [1-9]' "$work/metrics_c.json"
grep -q '"service.requests.sweep_chunk": [1-9]' "$work/metrics_d.json"
grep -q '"service.requests.ping": [1-9]' "$work/metrics_c.json"
grep -q '"service.requests.ping": [1-9]' "$work/metrics_d.json"

if [ -n "${SMOKE_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACT_DIR"
    cp "$work"/metrics_*.json "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
    cp "$work/sharded.err" "$work/skewed.err" \
       "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
fi
echo "service_smoke: PASS — skewed sweep stole work ($skew_line)"
