/**
 * @file
 * Long-lived mapping server: `iced_client` (or any wire-protocol
 * speaker, e.g. `design_space_explorer --server`) connects over a
 * Unix socket or TCP and gets mapping requests served through the
 * in-memory MappingCache backed by the on-disk PersistentMappingStore.
 *
 *   ./iced_serve --listen /tmp/iced.sock --store /var/cache/iced \
 *                [--threads N] [--cache-capacity N] [--sync-writes] \
 *                [--prescreen] [--metrics-out FILE] [--addr-file FILE] \
 *                [--debug-cell-delay-ms N]
 *
 * `--listen` (alias: `--socket`) takes either address form: a Unix
 * socket path, or `host:port` for TCP — `127.0.0.1:0` binds an
 * ephemeral port, and `--addr-file` writes the actual bound address
 * for scripts to pick up. The TCP listener speaks protocol v1 with no
 * authentication: bind it on trusted networks only (docs/SERVICE.md).
 *
 * SIGTERM/SIGINT trigger a graceful drain: the listener closes,
 * in-flight requests run to completion and reply, then the process
 * exits 0 (the contract the service-smoke CI job asserts). The final
 * MetricsRegistry snapshot goes to `--metrics-out` (or stderr as a
 * summary line) on the way out.
 */
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "service/server.hpp"

using namespace iced;

namespace {

MappingServer *g_server = nullptr;

extern "C" void
handleSignal(int)
{
    if (g_server)
        g_server->requestStop(); // async-signal-safe: one pipe write
}

int
usage()
{
    std::cerr
        << "usage: iced_serve --listen ADDR [--store DIR] [--threads N]\n"
           "                  [--cache-capacity N] [--sync-writes]\n"
           "                  [--prescreen] [--metrics-out FILE]\n"
           "                  [--addr-file FILE]\n"
           "\n"
           "  --listen     Unix socket path, or host:port for TCP\n"
           "               (host:0 binds an ephemeral port; see\n"
           "               --addr-file). --socket is an alias. The TCP\n"
           "               listener has no auth: trusted networks only\n"
           "  --addr-file  write the actual bound address (with the\n"
           "               real port) to FILE once listening\n"
           "  --prescreen  enable the multi-fidelity pre-screen on\n"
           "               served computes: attempt-cell failures are\n"
           "               memoized (and persisted with --store) so\n"
           "               repeat sweeps never relaunch known-failed\n"
           "               (II, lane) attempts\n"
           "  --debug-cell-delay-ms N  sleep N ms before serving each\n"
           "               cell — a skew-injection knob for scheduler\n"
           "               tests and benchmarks, never production\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    std::string metricsOut;
    std::string addrFile;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if ((arg == "--listen" || arg == "--socket") && hasValue) {
            opts.listenAddress = argv[++i];
        } else if (arg == "--store" && hasValue) {
            opts.storeDir = argv[++i];
        } else if (arg == "--threads" && hasValue) {
            opts.threads = std::atoi(argv[++i]);
        } else if (arg == "--cache-capacity" && hasValue) {
            opts.cacheCapacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--sync-writes") {
            opts.syncWrites = true;
        } else if (arg == "--prescreen") {
            opts.prescreen = true;
        } else if (arg == "--debug-cell-delay-ms" && hasValue) {
            opts.debugCellDelayMs =
                static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else if (arg == "--metrics-out" && hasValue) {
            metricsOut = argv[++i];
        } else if (arg == "--addr-file" && hasValue) {
            addrFile = argv[++i];
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return usage();
        }
    }
    if (opts.listenAddress.empty())
        return usage();

    try {
        MappingServer server(opts);
        g_server = &server;
        struct sigaction action{};
        action.sa_handler = handleSignal;
        sigaction(SIGTERM, &action, nullptr);
        sigaction(SIGINT, &action, nullptr);
        signal(SIGPIPE, SIG_IGN);

        server.start();
        if (!addrFile.empty()) {
            std::ofstream out(addrFile);
            fatalIf(!out, "cannot write ", addrFile);
            out << server.boundAddress() << "\n";
        }
        std::cerr << "iced_serve: listening on " << server.boundAddress();
        if (!opts.storeDir.empty())
            std::cerr << ", store " << opts.storeDir << " ("
                      << server.persistentEntryCount() << " entries)";
        std::cerr << "\n";
        server.wait();
        g_server = nullptr;

        if (!metricsOut.empty()) {
            std::ofstream out(metricsOut);
            fatalIf(!out, "cannot write ", metricsOut);
            out << MetricsRegistry::global().toJson() << "\n";
        }
        std::cerr << "iced_serve: drained";
        if (!opts.storeDir.empty())
            std::cerr << "; store now holds "
                      << server.persistentEntryCount() << " entries";
        std::cerr << "\n";
    } catch (const FatalError &err) {
        std::cerr << "iced_serve: error: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
