#!/usr/bin/env bash
# docs_check.sh — documentation consistency gate (CI `docs-check` job).
#
# Fails when:
#   1. an intra-repo Markdown link ([text](relative/path)) points at a
#      file that does not exist, or
#   2. DESIGN.md / README.md / docs/*.md reference a repo path (a
#      `src/...`-style token with a file extension, or a `src/<dir>`
#      module directory) that does not exist — the "stale section 7"
#      failure mode, or
#   3. a doc carrying a `<!-- docs-check: flags TOOL... -->` marker
#      mentions a `--flag` that none of the listed tools parse (no
#      matching "--flag" string literal in their sources) — the
#      renamed-flag failure mode. Sources are grepped, not run: the
#      CI docs-check job has no build step.
#
# Run from anywhere: the script cds to the repository root.
set -u

cd "$(dirname "$0")/.."

fail=0
err() {
    echo "docs_check: $*" >&2
    fail=1
}

md_files=$(find . -name '*.md' -not -path './build*/*' \
                -not -path './.git/*')

# --- 1. Relative Markdown links -------------------------------------
for md in $md_files; do
    dir=$(dirname "$md")
    # Extract (target) of [text](target); keep relative paths only.
    grep -oE '\]\([^)#?]+\)' "$md" 2>/dev/null |
        sed -e 's/^](//' -e 's/)$//' |
        grep -vE '^(https?|mailto):' |
        while read -r target; do
            [ -z "$target" ] && continue
            if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
                echo "BROKEN $md -> $target"
            fi
        done
done > /tmp/docs_check_links.$$
if [ -s /tmp/docs_check_links.$$ ]; then
    cat /tmp/docs_check_links.$$ >&2
    err "broken intra-repo Markdown link(s)"
fi
rm -f /tmp/docs_check_links.$$

# --- 2. Repo-path references in the design docs ---------------------
doc_set="DESIGN.md README.md ROADMAP.md"
for d in docs/*.md; do
    [ -e "$d" ] && doc_set="$doc_set $d"
done

for doc in $doc_set; do
    [ -e "$doc" ] || continue
    # Files with an extension, e.g. src/trace/trace.hpp, tools/x.sh.
    grep -oE '(src|tests|tools|docs|bench|examples)/[A-Za-z0-9_/.-]+\.(hpp|cpp|md|sh|yml|json)' \
        "$doc" | sort -u | while read -r ref; do
        [ -e "$ref" ] || echo "STALE $doc -> $ref"
    done
    # Module directories, e.g. src/exec, src/trace.
    grep -oE '`?src/[a-z_]+`?' "$doc" | tr -d '\140' | sort -u |
        while read -r ref; do
            [ -d "$ref" ] || echo "STALE $doc -> $ref (no such module)"
        done
done > /tmp/docs_check_refs.$$
if [ -s /tmp/docs_check_refs.$$ ]; then
    cat /tmp/docs_check_refs.$$ >&2
    err "stale repository path reference(s) in the docs"
fi
rm -f /tmp/docs_check_refs.$$

# --- 3. CLI flags mentioned in flag-checked docs ---------------------
# A doc opts in with `<!-- docs-check: flags TOOL [TOOL...] -->`.
# Every `--flag` token anywhere in that doc must then appear as a
# "--flag" string literal in one of the listed tools' sources, or be
# a build-system flag (cmake/ctest invocations quoted in the docs).
build_flags="--build --output-on-failure --test-dir --parallel --target"

tool_sources() {
    case "$1" in
    iced_serve)            echo "tools/iced_serve.cpp" ;;
    iced_client)           echo "tools/iced_client.cpp" ;;
    iced_fuzz)             echo "tools/iced_fuzz.cpp src/trace/trace_cli.cpp" ;;
    design_space_explorer) echo "examples/design_space_explorer.cpp src/trace/trace_cli.cpp" ;;
    bench_mapper)          echo "bench/bench_mapper.cpp src/trace/trace_cli.cpp" ;;
    bench_sim)             echo "bench/bench_sim.cpp src/trace/trace_cli.cpp" ;;
    bench_service)         echo "bench/bench_service.cpp" ;;
    *)                     echo "" ;;
    esac
}

for doc in $doc_set; do
    [ -e "$doc" ] || continue
    marker=$(grep -oE '<!-- docs-check: flags [a-z_ ]+ -->' "$doc" | head -1)
    [ -n "$marker" ] || continue
    tools=$(echo "$marker" | sed -e 's/<!-- docs-check: flags //' \
                                 -e 's/ -->//')
    allowed=$build_flags
    for tool in $tools; do
        sources=$(tool_sources "$tool")
        if [ -z "$sources" ]; then
            echo "BAD-MARKER $doc -> unknown tool '$tool'"
            continue
        fi
        for source in $sources; do
            [ -e "$source" ] || echo "BAD-MARKER $doc -> $source missing"
        done
        allowed="$allowed $(grep -hoE '"--[a-z][a-z0-9-]*"' $sources |
                            tr -d '"' | sort -u | tr '\n' ' ')"
    done
    # Strip Markdown link targets first: section anchors like
    # (#10-mapping-service--persistent-store) contain `--` runs that
    # are not flag references.
    sed -E 's/\]\([^)]*\)/]/g' "$doc" |
        grep -oE -- '--[a-z][a-z0-9-]+' | sort -u |
        while read -r flag; do
            case " $allowed " in
            *" $flag "*) ;;
            *) echo "STALE-FLAG $doc -> $flag (not parsed by: $tools)" ;;
            esac
        done
done > /tmp/docs_check_flags.$$
if [ -s /tmp/docs_check_flags.$$ ]; then
    cat /tmp/docs_check_flags.$$ >&2
    err "stale CLI flag reference(s) in the docs"
fi
rm -f /tmp/docs_check_flags.$$

if [ "$fail" -eq 0 ]; then
    echo "docs_check: OK"
fi
exit "$fail"
