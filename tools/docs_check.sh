#!/usr/bin/env bash
# docs_check.sh — documentation consistency gate (CI `docs-check` job).
#
# Fails when:
#   1. an intra-repo Markdown link ([text](relative/path)) points at a
#      file that does not exist, or
#   2. DESIGN.md / README.md / docs/*.md reference a repo path (a
#      `src/...`-style token with a file extension, or a `src/<dir>`
#      module directory) that does not exist — the "stale section 7"
#      failure mode.
#
# Run from anywhere: the script cds to the repository root.
set -u

cd "$(dirname "$0")/.."

fail=0
err() {
    echo "docs_check: $*" >&2
    fail=1
}

md_files=$(find . -name '*.md' -not -path './build*/*' \
                -not -path './.git/*')

# --- 1. Relative Markdown links -------------------------------------
for md in $md_files; do
    dir=$(dirname "$md")
    # Extract (target) of [text](target); keep relative paths only.
    grep -oE '\]\([^)#?]+\)' "$md" 2>/dev/null |
        sed -e 's/^](//' -e 's/)$//' |
        grep -vE '^(https?|mailto):' |
        while read -r target; do
            [ -z "$target" ] && continue
            if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
                echo "BROKEN $md -> $target"
            fi
        done
done > /tmp/docs_check_links.$$
if [ -s /tmp/docs_check_links.$$ ]; then
    cat /tmp/docs_check_links.$$ >&2
    err "broken intra-repo Markdown link(s)"
fi
rm -f /tmp/docs_check_links.$$

# --- 2. Repo-path references in the design docs ---------------------
doc_set="DESIGN.md README.md ROADMAP.md"
for d in docs/*.md; do
    [ -e "$d" ] && doc_set="$doc_set $d"
done

for doc in $doc_set; do
    [ -e "$doc" ] || continue
    # Files with an extension, e.g. src/trace/trace.hpp, tools/x.sh.
    grep -oE '(src|tests|tools|docs|bench|examples)/[A-Za-z0-9_/.-]+\.(hpp|cpp|md|sh|yml|json)' \
        "$doc" | sort -u | while read -r ref; do
        [ -e "$ref" ] || echo "STALE $doc -> $ref"
    done
    # Module directories, e.g. src/exec, src/trace.
    grep -oE '`?src/[a-z_]+`?' "$doc" | tr -d '\140' | sort -u |
        while read -r ref; do
            [ -d "$ref" ] || echo "STALE $doc -> $ref (no such module)"
        done
done > /tmp/docs_check_refs.$$
if [ -s /tmp/docs_check_refs.$$ ]; then
    cat /tmp/docs_check_refs.$$ >&2
    err "stale repository path reference(s) in the docs"
fi
rm -f /tmp/docs_check_refs.$$

if [ "$fail" -eq 0 ]; then
    echo "docs_check: OK"
fi
exit "$fail"
