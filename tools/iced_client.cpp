/**
 * @file
 * CLI client for `iced_serve`.
 *
 *   ./iced_client --server ADDR map <kernel> [unroll] [--deadline-ms N]
 *                 [--verify]
 *   ./iced_client --server ADDR sweep <kernel|all> [unroll]
 *                 [--deadline-ms N] [--verify]
 *   ./iced_client --backends A,B,... sweep <kernel|all> [unroll] ...
 *   ./iced_client --server ADDR sync-store <local-store-dir>
 *   ./iced_client --server ADDR stats
 *   ./iced_client ping ADDR   (or --server/--backends form)
 *   ./iced_client --server ADDR shutdown
 *
 * `--server` (alias: `--socket`) takes a Unix socket path or a TCP
 * `host:port`. `--backends` takes a comma-separated list of addresses
 * and serves sweeps through the work-stealing lease scheduler
 * (service/sharded_client.hpp): grid-order chunk leases, pipelined per
 * backend, adaptive chunk sizing, idle backends stealing from slow
 * ones, a health probe before the deal, and failover off dead
 * back-ends — the per-cell output stays in grid order, so stdout is
 * byte-identical to the single-server run modulo the `[tier]` tag.
 * A sharded run appends a `shard: ...` summary line with the
 * lease/steal/retry tally. `--no-steal` disables work stealing and
 * `--chunk-cells N` pins the lease size (both mainly for A/B runs and
 * CI); `--connect-timeout-ms` bounds TCP connects (default 5000;
 * 0 = wait forever).
 *
 * `ping` round-trips one `PingRequest` per target and prints the RTT
 * plus the server's stats digest (cells served, store entry counts) —
 * the same probe a sharded sweep runs before dealing. Exit 1 when any
 * target is unreachable.
 *
 * `map` sends one cell (the kernel on the default fabric); `sweep`
 * sends the design-space explorer's (fabric x island) grid for the
 * kernel (or every single-kernel workload). Each reply line shows the
 * outcome and the serving tier (memory / persistent / computed), and
 * a final `served: ...` summary aggregates the tiers — the line the
 * service-smoke CI job parses to assert persistent-store hits.
 *
 * `sync-store DIR` pulls every `.icm` entry / `.icn` marker the local
 * store at DIR is missing from the server's store (fingerprint
 * listing + checksum-verified fetch, atomic local writes) — warm-cache
 * replication between hosts.
 *
 * `--verify` recomputes every cell in-process with the exact same
 * request and requires the served mapping to be `equalMappings`-equal
 * (byte-identity via the codec) — exit 1 on any divergence.
 */
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "kernels/registry.hpp"
#include "mapper/mapping.hpp"
#include "service/sharded_client.hpp"

using namespace iced;

namespace {

int
usage()
{
    std::cerr
        << "usage: iced_client --server ADDR map <kernel> [unroll]\n"
           "                   [--deadline-ms N] [--verify]\n"
           "       iced_client --server ADDR sweep <kernel|all> [unroll]\n"
           "                   [--deadline-ms N] [--verify]\n"
           "       iced_client --backends A,B,... <map|sweep|stats|"
           "shutdown> ...\n"
           "       iced_client --server ADDR sync-store <store-dir>\n"
           "       iced_client --server ADDR stats\n"
           "       iced_client ping ADDR\n"
           "       iced_client --server ADDR shutdown\n"
           "\n"
           "  ADDR is a Unix socket path or host:port (TCP).\n"
           "  --socket is an alias of --server.\n"
           "  --connect-timeout-ms N  TCP connect budget (default 5000,\n"
           "                          0 = wait forever)\n"
           "  --chunk-cells N         pin the sharded lease size to N\n"
           "                          cells (default: adaptive)\n"
           "  --no-steal              disable work stealing across\n"
           "                          backends\n";
    return 2;
}

/** The design_space_explorer fabric frontier (kept in sync). */
std::vector<CgraConfig>
sweepFabrics()
{
    std::vector<CgraConfig> fabrics;
    for (int size : {4, 6, 8}) {
        for (int island : {1, 2, 3}) {
            if (size % island != 0)
                continue;
            CgraConfig config;
            config.rows = size;
            config.cols = size;
            config.islandRows = island;
            config.islandCols = island;
            fabrics.push_back(config);
        }
    }
    return fabrics;
}

struct CellLabel
{
    std::string kernel;
    std::string fabric;
};

/** Served result vs. a local in-process compute of the same request. */
bool
verifyCell(const CellLabel &label, const RequestCell &cell,
           const MapReplyMsg &reply)
{
    const auto local =
        computeMappingEntry(cell.config, cell.dfg, cell.options);
    const auto remote = decodeReplyEntry(reply);
    if (!remote) {
        std::cerr << "verify FAIL " << label.kernel << " "
                  << label.fabric << ": reply carried no entry\n";
        return false;
    }
    if (local->mapped() != remote->mapped() ||
        local->failed() != remote->failed()) {
        std::cerr << "verify FAIL " << label.kernel << " "
                  << label.fabric << ": outcome diverges (local "
                  << (local->mapped() ? "mapped" : "unmapped")
                  << ", served "
                  << (remote->mapped() ? "mapped" : "unmapped") << ")\n";
        return false;
    }
    if (local->mapped() &&
        !equalMappings(*local->mapping, *remote->mapping)) {
        std::cerr << "verify FAIL " << label.kernel << " "
                  << label.fabric
                  << ": served mapping differs from local tryMap\n";
        return false;
    }
    return true;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> parts;
    std::stringstream stream(list);
    std::string part;
    while (std::getline(stream, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string serverAddress;
    std::vector<std::string> backendAddresses;
    std::string command;
    std::vector<std::string> positional;
    std::uint32_t deadlineMs = 0;
    std::uint32_t chunkCells = 0;
    ClientOptions connection;
    bool verify = false;
    bool noSteal = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if ((arg == "--server" || arg == "--socket") && hasValue) {
            serverAddress = argv[++i];
        } else if (arg == "--backends" && hasValue) {
            backendAddresses = splitCommas(argv[++i]);
        } else if (arg == "--deadline-ms" && hasValue) {
            deadlineMs =
                static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else if (arg == "--connect-timeout-ms" && hasValue) {
            connection.connectTimeoutMs =
                static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else if (arg == "--chunk-cells" && hasValue) {
            chunkCells =
                static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else if (arg == "--no-steal") {
            noSteal = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (command.empty()) {
            command = arg;
        } else {
            positional.push_back(arg);
        }
    }
    const bool sharded = !backendAddresses.empty();
    if (command.empty())
        return usage();
    // `ping ADDR` names its target positionally; everything else needs
    // --server or --backends.
    if (serverAddress.empty() && !sharded &&
        !(command == "ping" && !positional.empty()))
        return usage();

    try {
        if (command == "ping") {
            std::vector<std::string> targets;
            if (!positional.empty())
                targets.push_back(positional[0]);
            else if (sharded)
                targets = backendAddresses;
            else
                targets.push_back(serverAddress);
            bool allAlive = true;
            for (const std::string &address : targets) {
                try {
                    const auto start = std::chrono::steady_clock::now();
                    ServiceClient conn(address, connection);
                    const PingReplyMsg pong = conn.ping();
                    const double rttMs =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
                    std::cout << address << ": alive rtt_ms="
                              << std::fixed << std::setprecision(2)
                              << rttMs
                              << " cells_served=" << pong.cellsServed
                              << " store_entries=" << pong.storeEntries
                              << " store_negatives="
                              << pong.storeNegatives << "\n";
                } catch (const FatalError &err) {
                    allAlive = false;
                    std::cout << address << ": DEAD (" << err.what()
                              << ")\n";
                }
            }
            return allAlive ? 0 : 1;
        }

        ShardedClientOptions shardOpts;
        shardOpts.connection = connection;
        shardOpts.workStealing = !noSteal;
        if (chunkCells != 0) {
            shardOpts.minChunkCells = chunkCells;
            shardOpts.maxChunkCells = chunkCells;
        }
        // Single-server runs use a direct ServiceClient: one
        // connection, no retry loop, and a connect failure surfaces
        // as one actionable error instead of a failover post-mortem.
        std::unique_ptr<ShardedClient> shardedClient;
        std::unique_ptr<ServiceClient> directClient;
        if (sharded)
            shardedClient = std::make_unique<ShardedClient>(
                backendAddresses, shardOpts);

        if (command == "stats") {
            if (sharded) {
                for (const auto &[address, json] :
                     shardedClient->statsAll()) {
                    std::cout << "# " << address << "\n";
                    std::cout << json << "\n";
                }
            } else {
                ServiceClient direct(serverAddress, connection);
                std::cout << direct.stats() << "\n";
            }
            return 0;
        }
        if (command == "shutdown") {
            if (sharded) {
                shardedClient->shutdownAll();
            } else {
                ServiceClient direct(serverAddress, connection);
                direct.shutdownServer();
            }
            std::cerr << "iced_client: server(s) acknowledged shutdown\n";
            return 0;
        }
        if (command == "sync-store") {
            if (sharded || positional.empty())
                return usage();
            PersistentMappingStore local(
                PersistentStoreOptions{positional[0], false});
            ServiceClient direct(serverAddress, connection);
            const StoreSyncResult sync =
                syncStoreFromServer(direct, local);
            std::cout << "sync-store: listed=" << sync.listed
                      << " pulled=" << sync.pulled
                      << " pulled-negative=" << sync.pulledNegative
                      << " present=" << sync.alreadyPresent
                      << " skipped=" << sync.skipped << "\n";
            return 0;
        }
        if (command != "map" && command != "sweep")
            return usage();
        if (positional.empty())
            return usage();

        const std::string name = positional[0];
        const int unroll =
            positional.size() > 1 ? std::atoi(positional[1].c_str()) : 1;

        std::vector<std::string> kernels;
        if (command == "sweep" && name == "all") {
            for (const Kernel *k : singleKernels())
                kernels.push_back(k->name);
        } else {
            kernels.push_back(name);
        }

        const std::vector<CgraConfig> fabrics =
            command == "map" ? std::vector<CgraConfig>{CgraConfig{}}
                             : sweepFabrics();

        std::vector<RequestCell> cells;
        std::vector<CellLabel> labels;
        for (const std::string &kernel : kernels) {
            const Dfg dfg = findKernel(kernel).build(unroll);
            for (const CgraConfig &fabric : fabrics) {
                RequestCell cell;
                cell.config = fabric;
                cell.dfg = dfg;
                cells.push_back(std::move(cell));
                labels.push_back({kernel, Cgra(fabric).describe()});
            }
        }

        if (!sharded)
            directClient = std::make_unique<ServiceClient>(
                serverAddress, connection);
        std::vector<MapReplyMsg> replies;
        if (command == "map")
            replies.push_back(
                sharded ? shardedClient->map(cells[0], deadlineMs)
                        : directClient->map(cells[0], deadlineMs));
        else
            replies = sharded
                          ? shardedClient->sweep(cells, deadlineMs)
                          : directClient->sweep(cells, deadlineMs);

        std::size_t byTier[3] = {0, 0, 0};
        bool verified = true;
        for (std::size_t i = 0; i < replies.size(); ++i) {
            const MapReplyMsg &reply = replies[i];
            std::cout << labels[i].kernel << " x" << unroll << " "
                      << labels[i].fabric << ": "
                      << toString(reply.status) << " ["
                      << toString(reply.source) << "]";
            if (reply.status == ReplyStatus::Failed)
                std::cout << " (" << reply.error << ")";
            std::cout << "\n";
            byTier[static_cast<int>(reply.source)]++;
            if (verify && reply.status != ReplyStatus::DeadlineExceeded)
                verified = verifyCell(labels[i], cells[i], reply) &&
                           verified;
        }
        std::cout << "served: memory=" << byTier[0]
                  << " persistent=" << byTier[1]
                  << " computed=" << byTier[2]
                  << " total=" << replies.size() << "\n";
        if (sharded) {
            const ShardedClient::ShardStats &stats =
                shardedClient->lastStats();
            std::cout << "shard: backends="
                      << shardedClient->backendAddresses().size()
                      << " dead=" << stats.deadBackends
                      << " failover=" << stats.failovers
                      << " retries=" << stats.retries
                      << " probes-failed=" << stats.probesFailed
                      << " leases=" << stats.leases
                      << " lease-cells=" << stats.leaseCellsMin << ".."
                      << stats.leaseCellsMax
                      << " steals=" << stats.steals
                      << " stolen-cells=" << stats.stolenCells
                      << " dup-replies=" << stats.duplicateReplies
                      << "\n";
        }
        if (verify) {
            std::cout << "verify: "
                      << (verified ? "all served mappings byte-identical "
                                     "to local tryMap"
                                   : "MISMATCH")
                      << "\n";
            if (!verified)
                return 1;
        }
    } catch (const FatalError &err) {
        std::cerr << "iced_client: error: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
