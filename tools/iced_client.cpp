/**
 * @file
 * CLI client for `iced_serve`.
 *
 *   ./iced_client --socket PATH map <kernel> [unroll] [--deadline-ms N]
 *                 [--verify]
 *   ./iced_client --socket PATH sweep <kernel|all> [unroll]
 *                 [--deadline-ms N] [--verify]
 *   ./iced_client --socket PATH stats
 *   ./iced_client --socket PATH shutdown
 *
 * `map` sends one cell (the kernel on the default fabric); `sweep`
 * sends the design-space explorer's (fabric x island) grid for the
 * kernel (or every single-kernel workload) as one SweepRequest the
 * server shards across its pool. Each reply line shows the outcome and
 * the serving tier (memory / persistent / computed), and a final
 * `served: ...` summary aggregates the tiers — the line the
 * service-smoke CI job parses to assert persistent-store hits.
 *
 * `--verify` recomputes every cell in-process with the exact same
 * request and requires the served mapping to be `equalMappings`-equal
 * (byte-identity via the codec) — exit 1 on any divergence.
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "kernels/registry.hpp"
#include "mapper/mapping.hpp"
#include "service/client.hpp"

using namespace iced;

namespace {

int
usage()
{
    std::cerr
        << "usage: iced_client --socket PATH map <kernel> [unroll]\n"
           "                   [--deadline-ms N] [--verify]\n"
           "       iced_client --socket PATH sweep <kernel|all> [unroll]\n"
           "                   [--deadline-ms N] [--verify]\n"
           "       iced_client --socket PATH stats\n"
           "       iced_client --socket PATH shutdown\n";
    return 2;
}

/** The design_space_explorer fabric frontier (kept in sync). */
std::vector<CgraConfig>
sweepFabrics()
{
    std::vector<CgraConfig> fabrics;
    for (int size : {4, 6, 8}) {
        for (int island : {1, 2, 3}) {
            if (size % island != 0)
                continue;
            CgraConfig config;
            config.rows = size;
            config.cols = size;
            config.islandRows = island;
            config.islandCols = island;
            fabrics.push_back(config);
        }
    }
    return fabrics;
}

struct CellLabel
{
    std::string kernel;
    std::string fabric;
};

/** Served result vs. a local in-process compute of the same request. */
bool
verifyCell(const CellLabel &label, const RequestCell &cell,
           const MapReplyMsg &reply)
{
    const auto local =
        computeMappingEntry(cell.config, cell.dfg, cell.options);
    const auto remote = decodeReplyEntry(reply);
    if (!remote) {
        std::cerr << "verify FAIL " << label.kernel << " "
                  << label.fabric << ": reply carried no entry\n";
        return false;
    }
    if (local->mapped() != remote->mapped() ||
        local->failed() != remote->failed()) {
        std::cerr << "verify FAIL " << label.kernel << " "
                  << label.fabric << ": outcome diverges (local "
                  << (local->mapped() ? "mapped" : "unmapped")
                  << ", served "
                  << (remote->mapped() ? "mapped" : "unmapped") << ")\n";
        return false;
    }
    if (local->mapped() &&
        !equalMappings(*local->mapping, *remote->mapping)) {
        std::cerr << "verify FAIL " << label.kernel << " "
                  << label.fabric
                  << ": served mapping differs from local tryMap\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string command;
    std::vector<std::string> positional;
    std::uint32_t deadlineMs = 0;
    bool verify = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--socket" && hasValue) {
            socketPath = argv[++i];
        } else if (arg == "--deadline-ms" && hasValue) {
            deadlineMs =
                static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else if (arg == "--verify") {
            verify = true;
        } else if (command.empty()) {
            command = arg;
        } else {
            positional.push_back(arg);
        }
    }
    if (socketPath.empty() || command.empty())
        return usage();

    try {
        ServiceClient client(socketPath);

        if (command == "stats") {
            std::cout << client.stats() << "\n";
            return 0;
        }
        if (command == "shutdown") {
            client.shutdownServer();
            std::cerr << "iced_client: server acknowledged shutdown\n";
            return 0;
        }
        if (command != "map" && command != "sweep")
            return usage();
        if (positional.empty())
            return usage();

        const std::string name = positional[0];
        const int unroll =
            positional.size() > 1 ? std::atoi(positional[1].c_str()) : 1;

        std::vector<std::string> kernels;
        if (command == "sweep" && name == "all") {
            for (const Kernel *k : singleKernels())
                kernels.push_back(k->name);
        } else {
            kernels.push_back(name);
        }

        const std::vector<CgraConfig> fabrics =
            command == "map" ? std::vector<CgraConfig>{CgraConfig{}}
                             : sweepFabrics();

        std::vector<RequestCell> cells;
        std::vector<CellLabel> labels;
        for (const std::string &kernel : kernels) {
            const Dfg dfg = findKernel(kernel).build(unroll);
            for (const CgraConfig &fabric : fabrics) {
                RequestCell cell;
                cell.config = fabric;
                cell.dfg = dfg;
                cells.push_back(std::move(cell));
                labels.push_back({kernel, Cgra(fabric).describe()});
            }
        }

        const std::vector<MapReplyMsg> replies =
            command == "map"
                ? std::vector<MapReplyMsg>{client.map(cells[0],
                                                      deadlineMs)}
                : client.sweep(cells, deadlineMs);

        std::size_t byTier[3] = {0, 0, 0};
        bool verified = true;
        for (std::size_t i = 0; i < replies.size(); ++i) {
            const MapReplyMsg &reply = replies[i];
            std::cout << labels[i].kernel << " x" << unroll << " "
                      << labels[i].fabric << ": "
                      << toString(reply.status) << " ["
                      << toString(reply.source) << "]";
            if (reply.status == ReplyStatus::Failed)
                std::cout << " (" << reply.error << ")";
            std::cout << "\n";
            byTier[static_cast<int>(reply.source)]++;
            if (verify && reply.status != ReplyStatus::DeadlineExceeded)
                verified = verifyCell(labels[i], cells[i], reply) &&
                           verified;
        }
        std::cout << "served: memory=" << byTier[0]
                  << " persistent=" << byTier[1]
                  << " computed=" << byTier[2]
                  << " total=" << replies.size() << "\n";
        if (verify) {
            std::cout << "verify: "
                      << (verified ? "all served mappings byte-identical "
                                     "to local tryMap"
                                   : "MISMATCH")
                      << "\n";
            if (!verified)
                return 1;
        }
    } catch (const FatalError &err) {
        std::cerr << "iced_client: error: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
