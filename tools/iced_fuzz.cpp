/**
 * @file
 * `iced_fuzz` — randomized differential verification CLI.
 *
 * Runs a corpus of seed-derived cases through map → validate →
 * simulate and compares each against the functional interpreter. A
 * case that does not fit its fabric is skipped; any disagreement or
 * unexpected exception is a failure, which is greedily shrunk and
 * reported with a copy-pasteable repro line.
 *
 * Exit status: 0 all cases passed (or skipped), 1 failures found,
 * 2 usage error.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "fuzz/driver.hpp"
#include "trace/trace_cli.hpp"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: iced_fuzz [options]\n"
          "\n"
          "  --seed N           base seed (default: ICED_SEED env or 1)\n"
          "  --cases N          number of cases to run (default 1000)\n"
          "  --time-budget SEC  stop submitting new cases after SEC seconds\n"
          "  --threads N        worker threads (default: ICED_THREADS env\n"
          "                     or hardware concurrency)\n"
          "  --repro SEED       run exactly one case from its printed seed\n"
          "                     and dump it in full\n"
          "  --inject-fault F   deliberately corrupt a model to exercise\n"
          "                     the oracle; F: sim-off-by-one,\n"
          "                     sim-engine-drift, prescreen-misprune\n"
          "  --sim-engine E     cycle-simulator engine(s) per case:\n"
          "                     event (default), dense (reference\n"
          "                     engine only), or both — run both and\n"
          "                     report any SimResult divergence as a\n"
          "                     sim_engine_diverged failure\n"
          "  --stress-rollback  evaluate every placement candidate twice\n"
          "                     with a transaction rollback in between;\n"
          "                     any divergence is a Map-phase failure\n"
          "  --prescreen        pre-screen differential: additionally map\n"
          "                     each case with the multi-fidelity pre-\n"
          "                     screen (ranked launches + negative-attempt\n"
          "                     memo, two passes over a shared memo); any\n"
          "                     divergence from the unscreened mapping is\n"
          "                     a prescreen_misprune failure\n"
          "  --map-threads N    portfolio differential: additionally map\n"
          "                     each case with the parallel portfolio\n"
          "                     search at N threads; any divergence from\n"
          "                     the sequential mapping is a Map-phase\n"
          "                     failure\n"
          "  --no-shrink        report failures without minimizing them\n"
          "  --shrink-budget SEC  per-failure shrink budget (default 30)\n"
          "  --out-dir DIR      write one <seed>.txt dump per shrunk failure\n"
          "  --verbose          print per-case verdicts\n"
          "  --help             this text\n"
       << iced::TraceCli::usageText();
}

std::uint64_t
parseSeed(const std::string &text)
{
    return std::stoull(text, nullptr, 0); // accepts 0x... and decimal
}

struct CliArgs
{
    iced::FuzzRunOptions run;
    std::optional<std::uint64_t> repro;
    std::string outDir;
    bool verbose = false;
};

int
parse(int argc, char **argv, CliArgs &cli)
{
    auto need_value = [&](int i) {
        if (i + 1 >= argc) {
            std::cerr << "iced_fuzz: " << argv[i] << " needs a value\n";
            return false;
        }
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return -1;
        } else if (arg == "--seed") {
            if (!need_value(i))
                return 2;
            cli.run.baseSeed = parseSeed(argv[++i]);
        } else if (arg == "--cases") {
            if (!need_value(i))
                return 2;
            cli.run.cases = std::atoi(argv[++i]);
        } else if (arg == "--time-budget") {
            if (!need_value(i))
                return 2;
            cli.run.timeBudget =
                std::chrono::seconds(std::atoi(argv[++i]));
        } else if (arg == "--threads") {
            if (!need_value(i))
                return 2;
            cli.run.threads = std::atoi(argv[++i]);
        } else if (arg == "--repro") {
            if (!need_value(i))
                return 2;
            cli.repro = parseSeed(argv[++i]);
        } else if (arg == "--inject-fault") {
            if (!need_value(i))
                return 2;
            const std::string fault = argv[++i];
            if (fault == "sim-off-by-one") {
                cli.run.oracle.fault = iced::InjectedFault::SimOffByOne;
            } else if (fault == "sim-engine-drift") {
                cli.run.oracle.fault =
                    iced::InjectedFault::SimEngineDrift;
            } else if (fault == "prescreen-misprune") {
                cli.run.oracle.fault =
                    iced::InjectedFault::PrescreenMisprune;
            } else {
                std::cerr << "iced_fuzz: unknown fault '" << fault
                          << "'\n";
                return 2;
            }
        } else if (arg == "--sim-engine") {
            if (!need_value(i))
                return 2;
            const std::string engine = argv[++i];
            if (engine == "event") {
                cli.run.oracle.simEngine = iced::SimEngineMode::Event;
            } else if (engine == "dense") {
                cli.run.oracle.simEngine = iced::SimEngineMode::Dense;
            } else if (engine == "both") {
                cli.run.oracle.simEngine = iced::SimEngineMode::Both;
            } else {
                std::cerr << "iced_fuzz: unknown sim engine '" << engine
                          << "' (event|dense|both)\n";
                return 2;
            }
        } else if (arg == "--stress-rollback") {
            cli.run.oracle.stressRollback = true;
        } else if (arg == "--prescreen") {
            cli.run.oracle.prescreen = true;
        } else if (arg == "--map-threads") {
            if (!need_value(i))
                return 2;
            cli.run.oracle.mapThreads = std::atoi(argv[++i]);
            if (cli.run.oracle.mapThreads < 1) {
                std::cerr << "iced_fuzz: --map-threads must be >= 1\n";
                return 2;
            }
        } else if (arg == "--no-shrink") {
            cli.run.shrink = false;
        } else if (arg == "--shrink-budget") {
            if (!need_value(i))
                return 2;
            cli.run.shrinker.timeBudget =
                std::chrono::seconds(std::atoi(argv[++i]));
        } else if (arg == "--out-dir") {
            if (!need_value(i))
                return 2;
            cli.outDir = argv[++i];
        } else if (arg == "--verbose") {
            cli.verbose = true;
        } else {
            std::cerr << "iced_fuzz: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    return 0;
}

/** Run one seed end to end and dump everything a bug report needs. */
int
runRepro(const CliArgs &cli, std::uint64_t seed)
{
    const iced::FuzzCase fc = iced::makeCase(seed, cli.run.generator);
    std::cout << iced::describeCase(fc);
    const iced::OracleResult r = iced::runCase(fc, cli.run.oracle);
    if (r.failed()) {
        std::cout << "FAIL [" << iced::toString(r.phase)
                  << "] " << r.message << "\n";
        if (cli.run.shrink) {
            const iced::ShrinkResult s =
                iced::shrinkCase(fc, cli.run.oracle, cli.run.shrinker);
            std::cout << "shrunk to " << s.shrunk.dfg.nodeCount()
                      << " nodes after " << s.attempts << " attempts ("
                      << s.reductions << " reductions):\n"
                      << iced::describeCase(s.shrunk)
                      << "FAIL [" << iced::toString(s.failure.phase)
                      << "] " << s.failure.message << "\n";
        }
        return 1;
    }
    std::cout << (r.skipped() ? "SKIP " + r.message
                              : "PASS ii=" + std::to_string(r.ii))
              << "\n";
    return 0;
}

void
dumpFailure(const std::string &dir, const iced::FuzzFailure &f)
{
    std::ostringstream name;
    name << dir << "/0x" << std::hex << f.seed << ".txt";
    std::ofstream out(name.str());
    if (!out) {
        std::cerr << "iced_fuzz: cannot write " << name.str() << "\n";
        return;
    }
    out << "original failure [" << iced::toString(f.result.phase) << "] "
        << f.result.message << "\n"
        << "shrunk failure [" << iced::toString(f.shrunkResult.phase)
        << "] " << f.shrunkResult.message << "\n"
        << iced::describeCase(f.shrunk);
}

} // namespace

int
main(int argc, char **argv)
{
    iced::TraceCli trace;
    if (!trace.parse(argc, argv))
        return 2;
    CliArgs cli;
    if (const char *env = std::getenv("ICED_SEED"))
        cli.run.baseSeed = parseSeed(env);
    const int rc = parse(argc, argv, cli);
    if (rc == -1)
        return 0;
    if (rc != 0)
        return rc;
    trace.begin();

    try {
        if (cli.repro) {
            const int repro_rc = runRepro(cli, *cli.repro);
            return trace.finish() ? repro_rc : 2;
        }

        const iced::FuzzSummary summary = iced::runFuzz(cli.run);
        std::cout << "iced_fuzz: " << summary.casesRun << " cases, "
                  << summary.passed << " passed, " << summary.skipped
                  << " skipped (no fit), " << summary.failures.size()
                  << " failed"
                  << (summary.timedOut ? " [time budget reached]" : "")
                  << "\n";
        for (const iced::FuzzFailure &f : summary.failures) {
            std::cout << "FAIL case " << f.index << " seed 0x" << std::hex
                      << f.seed << std::dec << " ["
                      << iced::toString(f.result.phase) << "] "
                      << f.result.message << "\n";
            if (f.reductions > 0)
                std::cout << "  shrunk to " << f.shrunk.dfg.nodeCount()
                          << " nodes / " << f.shrunk.iterations
                          << " iterations ["
                          << iced::toString(f.shrunkResult.phase) << "] "
                          << f.shrunkResult.message << "\n";
            std::cout << "  repro: " << iced::reproLine(cli.run, f.seed)
                      << "\n";
            if (cli.verbose)
                std::cout << iced::describeCase(f.shrunk);
            if (!cli.outDir.empty())
                dumpFailure(cli.outDir, f);
        }
        if (!trace.finish())
            return 2;
        return summary.ok() ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "iced_fuzz: " << e.what() << "\n";
        return 2;
    }
}
