/**
 * @file
 * LU-decomposition pipeline with pipeline adjustment: the six LU
 * kernels are merged down to four combined stages (as in the paper's
 * "6 kernels organized in 4 pipeline stages"), partitioned over the
 * fabric's islands, and streamed under the three runtime policies.
 *
 *   ./lu_streaming [inputs=150] [--trace-out FILE] [--metrics-out FILE]
 */
#include <iostream>

#include "common/table_writer.hpp"
#include "streaming/stream_sim.hpp"
#include "trace/trace_cli.hpp"

using namespace iced;

int
main(int argc, char **argv)
{
    TraceCli trace;
    if (!trace.parse(argc, argv))
        return 2;
    trace.begin();
    const int inputs = argc > 1 ? std::atoi(argv[1]) : 150;
    Cgra cgra(CgraConfig{});
    PowerModel model;
    Rng rng(7);
    const AppDef raw = makeLuApp(rng, inputs);

    // Pipeline adjustment: 6 kernels -> 4 combined stages, mirroring
    // the paper's LU organization (some kernels share islands and
    // time-multiplex).
    const AppDef app = adjustPipeline(raw, 4);
    std::cout << "pipeline after adjustment (" << raw.stages.size()
              << " kernels -> " << app.stages.size() << " stages):\n";
    for (const StageDef &s : app.stages)
        std::cout << "  " << s.label << " (mapped as " << s.kernelName
                  << ")\n";

    Partitioner partitioner(cgra);
    const PartitionPlan iced_plan = partitioner.plan(app, 50, true);
    const PartitionPlan conv_plan = partitioner.plan(app, 50, false);

    TableWriter table({"policy", "energy (uJ)", "makespan (Mcyc)",
                       "avg power (mW)", "inputs/uJ"});
    struct Row { const char *name; StreamStats stats; };
    const Row rows[] = {
        {"static normal",
         simulateStream(app, partitioner, conv_plan,
                        StreamPolicy::StaticNormal, model)},
        {"DRIPS (dynamic repartition)",
         simulateStream(app, partitioner, conv_plan,
                        StreamPolicy::Drips, model)},
        {"ICED (windowed island DVFS)",
         simulateStream(app, partitioner, iced_plan,
                        StreamPolicy::IcedDvfs, model)},
    };
    for (const Row &r : rows) {
        table.addRow({r.name, TableWriter::num(r.stats.energyUj, 1),
                      TableWriter::num(r.stats.makespanCycles / 1e6, 3),
                      TableWriter::num(r.stats.avgPowerMw, 1),
                      TableWriter::num(r.stats.inputsPerUj, 4)});
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nICED / DRIPS energy-efficiency: "
              << TableWriter::num(rows[2].stats.inputsPerUj /
                                      rows[1].stats.inputsPerUj,
                                  3)
              << "x\n";
    return trace.finish() ? 0 : 1;
}
