/**
 * @file
 * The paper's Figure 1/3 walkthrough: the synthetic 11-node kernel on
 * a 4x4 CGRA, comparing the conventional mapping, per-tile DVFS, and
 * ICED's island-aware mapping, with a per-tile DVFS-level map like
 * the last row of Figure 3.
 *
 *   ./motivating_example
 */
#include <iostream>

#include "kernels/registry.hpp"
#include "mapper/mapper.hpp"
#include "mapper/per_tile_dvfs.hpp"
#include "mapper/power_gating.hpp"
#include "mapper/validate.hpp"
#include "power/report.hpp"

using namespace iced;

namespace {

char
levelGlyph(DvfsLevel level)
{
    switch (level) {
      case DvfsLevel::Normal: return 'N';
      case DvfsLevel::Relax: return 'r';
      case DvfsLevel::Rest: return '.';
      case DvfsLevel::PowerGated: return ' ';
    }
    return '?';
}

void
printLevelMap(const Cgra &cgra, const std::vector<DvfsLevel> &levels,
              const std::string &title)
{
    std::cout << title << " (N=normal r=relax .=rest blank=gated)\n";
    for (int row = cgra.rows() - 1; row >= 0; --row) {
        std::cout << "  ";
        for (int col = 0; col < cgra.cols(); ++col)
            std::cout << '['
                      << levelGlyph(levels[cgra.tileAt(row, col)])
                      << ']';
        std::cout << "\n";
    }
}

} // namespace

int
main()
{
    CgraConfig config;
    config.rows = 4;
    config.cols = 4;
    Cgra cgra(config);
    const Dfg dfg = buildSyntheticKernel();
    PowerModel model;

    std::cout << "Synthetic kernel: " << dfg.mappableNodeCount()
              << " nodes, RecMII 4 (critical cycle n1-n4-n7-n9)\n\n";

    MapperOptions conv_opts;
    conv_opts.dvfsAware = false;
    Mapping conventional = Mapper(cgra, conv_opts).map(dfg);
    validateMapping(conventional);
    std::cout << "(a) conventional mapping, II="
              << conventional.ii() << "\n";
    const auto base = evaluateBaseline(conventional, model);
    printLevelMap(cgra, conventional.tileLevels(), "    levels");
    std::cout << "    power " << base.power.totalMw << " mW\n\n";

    const PerTileDvfsResult per_tile = applyPerTileDvfs(conventional);
    std::cout << "(b) per-tile DVFS on (a): " << per_tile.restTiles
              << " rest, " << per_tile.relaxTiles << " relax, "
              << per_tile.gatedTiles << " gated\n";
    printLevelMap(cgra, per_tile.tileLevels, "    levels");
    const auto tile_eval = evaluatePerTileDvfs(conventional, model);
    std::cout << "    power " << tile_eval.power.totalMw
              << " mW (36-controller overhead included)\n\n";

    Mapping iced = Mapper(cgra, MapperOptions{}).map(dfg);
    validateMapping(iced);
    const auto iced_eval = evaluateIced(iced, model);
    std::cout << "(d/e) ICED DVFS-aware mapping, II=" << iced.ii()
              << "\n";
    Mapping gated = iced;
    gateUnusedIslands(gated);
    printLevelMap(cgra, gated.tileLevels(), "    levels");
    std::cout << "    power " << iced_eval.power.totalMw
              << " mW -> "
              << base.power.totalMw / iced_eval.power.totalMw
              << "x over the baseline (paper: ~1.14x)\n\n";
    std::cout << iced.describe();
    return 0;
}
