/**
 * @file
 * Quickstart: build a small kernel DFG with the public API, map it
 * onto a DVFS-island CGRA, run the cycle-accurate simulator, and
 * print schedule, DVFS levels, utilization, and power.
 *
 *   ./quickstart
 */
#include <iostream>

#include "dfg/interpreter.hpp"
#include "kernels/builder_util.hpp"
#include "mapper/mapper.hpp"
#include "mapper/validate.hpp"
#include "power/report.hpp"
#include "sim/simulator.hpp"

using namespace iced;

int
main()
{
    // 1. Describe the fabric: a 4x4 CGRA with 2x2 DVFS islands.
    CgraConfig config;
    config.rows = 4;
    config.cols = 4;
    config.islandRows = 2;
    config.islandCols = 2;
    Cgra cgra(config);

    // 2. Build a kernel: y[i] = 3*x[i] + x[i-1] (a 2-tap filter).
    KernelBuilder b("twotap");
    const auto i = b.counter(/*start=*/0, /*step=*/1,
                             /*bound=*/1 << 30, /*reset=*/0);
    const NodeId x = b.load(i.value, /*base=*/0, "x");
    const NodeId scaled = b.op2(Opcode::Mul, x, b.imm(3), "scaled");
    // x[i-1] through a loop-carried edge (distance 1, init 0).
    const NodeId sum = b.dfg().addNode(Opcode::Add, "sum");
    b.dfg().addEdge(scaled, sum, 0);
    b.dfg().addEdge(x, sum, 1, /*distance=*/1, /*init=*/0);
    b.store(i.value, sum, /*base=*/64, "y");
    const Dfg dfg = b.take();

    // 3. Map it DVFS-aware and check every invariant.
    Mapping mapping = Mapper(cgra, MapperOptions{}).map(dfg);
    validateMapping(mapping);
    std::cout << mapping.describe() << "\n";

    // 4. Execute 16 iterations cycle-accurately and cross-check the
    //    functional golden model.
    std::vector<std::int64_t> memory(128, 0);
    for (int k = 0; k < 16; ++k)
        memory[k] = k + 1;
    const SimResult sim = simulate(mapping, memory, SimOptions{16});
    const InterpResult ref = interpretDfg(dfg, memory, 16, false);
    const bool match = std::equal(ref.memory.begin(), ref.memory.end(),
                                  sim.memory.begin());
    std::cout << "simulated " << sim.execCycles << " cycles; golden "
              << (match ? "MATCH" : "MISMATCH") << "\n";
    std::cout << "y[0..7] = ";
    for (int k = 0; k < 8; ++k)
        std::cout << sim.memory[64 + k] << " ";
    std::cout << "\n";

    // 5. Energy report.
    PowerModel model;
    const auto eval = evaluateIced(mapping, model);
    std::cout << "II=" << eval.ii << ", avg utilization "
              << 100 * eval.stats.avgUtilization << "%, power "
              << eval.power.totalMw << " mW (of which DVFS overhead "
              << eval.power.dvfsOverheadMw << " mW)\n";
    return match ? 0 : 1;
}
