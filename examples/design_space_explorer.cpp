/**
 * @file
 * Design-space exploration with the public API: sweep fabric sizes
 * and DVFS island sizes for a kernel given on the command line and
 * print the II / utilization / power frontier. This is the "ICED
 * compiler can take in any island size for compilation and DVFS
 * co-design" workflow.
 *
 *   ./design_space_explorer [kernel=gemm] [unroll=1]
 */
#include <iostream>

#include "common/table_writer.hpp"
#include "kernels/registry.hpp"
#include "mapper/mapper.hpp"
#include "mapper/validate.hpp"
#include "power/report.hpp"

using namespace iced;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gemm";
    const int unroll = argc > 2 ? std::atoi(argv[2]) : 1;
    const Kernel &kernel = findKernel(name);
    const Dfg dfg = kernel.build(unroll);
    PowerModel model;

    std::cout << "kernel '" << name << "' x" << unroll << ": "
              << dfg.mappableNodeCount() << " nodes, "
              << dfg.memoryOpCount() << " memory ops\n\n";

    TableWriter table({"fabric", "islands", "II", "avg util",
                       "avg DVFS", "power (mW)", "mW x II"});
    for (int size : {4, 6, 8}) {
        for (int island : {1, 2, 3}) {
            if (size % island != 0)
                continue;
            CgraConfig config;
            config.rows = size;
            config.cols = size;
            config.islandRows = island;
            config.islandCols = island;
            Cgra cgra(config);
            auto mapping = Mapper(cgra, MapperOptions{}).tryMap(dfg);
            if (!mapping) {
                table.addRow({cgra.describe(), "-", "no fit", "-",
                              "-", "-", "-"});
                continue;
            }
            validateMapping(*mapping);
            const auto eval = evaluateIced(*mapping, model);
            table.addRow(
                {cgra.describe(),
                 std::to_string(cgra.islandCount()),
                 std::to_string(eval.ii),
                 TableWriter::num(100 * eval.stats.avgUtilization, 1) +
                     "%",
                 TableWriter::num(100 * eval.stats.avgDvfsFraction, 1) +
                     "%",
                 TableWriter::num(eval.power.totalMw, 1),
                 TableWriter::num(eval.power.totalMw * eval.ii, 0)});
        }
    }
    table.print(std::cout);
    std::cout << "\n'mW x II' is an energy-per-iteration proxy: lower "
                 "is better at equal throughput requirements.\n";
    return 0;
}
