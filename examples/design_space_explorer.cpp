/**
 * @file
 * Design-space exploration with the public API: sweep fabric sizes
 * and DVFS island sizes for one kernel (or every single-kernel
 * workload) and print the II / utilization / power frontier. This is
 * the "ICED compiler can take in any island size for compilation and
 * DVFS co-design" workflow.
 *
 *   ./design_space_explorer [kernel=gemm|all] [unroll=1]
 *
 * The sweep grid is dispatched through the src/exec engine: cells map
 * in parallel on `ICED_THREADS` workers (default: hardware threads),
 * duplicate cells are served by the mapping cache, and results are
 * collected in grid order — stdout is byte-identical at any thread
 * count. Progress/ETA and the runtime summary go to stderr.
 *
 * With `--server ADDR` the grid is offloaded to a running
 * `iced_serve` instead: one SweepRequest ships every cell, the server
 * shards it across its pool and serves repeats from its persistent
 * store, and the result tables are byte-identical to the in-process
 * path (the codec round-trip preserves `equalMappings` identity).
 * ADDR is a Unix socket path or TCP `host:port`; a comma-separated
 * list (`--server hostA:7100,hostB:7100`) serves the grid through the
 * work-stealing lease scheduler across several back-ends — probing,
 * retry, failover, idle backends stealing from slow ones
 * (service/sharded_client.hpp) — and stdout stays byte-identical to
 * the local run even when a backend is slow or dies mid-sweep.
 */
#include <iostream>
#include <sstream>

#include "common/logging.hpp"
#include "common/table_writer.hpp"
#include "exec/experiment_runner.hpp"
#include "kernels/registry.hpp"
#include "mapper/validate.hpp"
#include "power/report.hpp"
#include "service/sharded_client.hpp"
#include "trace/trace_cli.hpp"

using namespace iced;

namespace {

/** The (fabric, island) frontier evaluated per kernel. */
std::vector<CgraConfig>
sweepFabrics()
{
    std::vector<CgraConfig> fabrics;
    for (int size : {4, 6, 8}) {
        for (int island : {1, 2, 3}) {
            if (size % island != 0)
                continue;
            CgraConfig config;
            config.rows = size;
            config.cols = size;
            config.islandRows = island;
            config.islandCols = island;
            fabrics.push_back(config);
        }
    }
    return fabrics;
}

void
printKernelTable(const std::string &name, int unroll,
                 const std::vector<JobResult> &cells)
{
    const Kernel &kernel = findKernel(name);
    const Dfg dfg = kernel.build(unroll);
    PowerModel model;

    std::cout << "kernel '" << name << "' x" << unroll << ": "
              << dfg.mappableNodeCount() << " nodes, "
              << dfg.memoryOpCount() << " memory ops\n\n";

    TableWriter table({"fabric", "islands", "II", "avg util",
                       "avg DVFS", "power (mW)", "mW x II"});
    for (const JobResult &cell : cells) {
        const Cgra cgra(cell.spec.fabric);
        if (!cell.mapped()) {
            table.addRow({cgra.describe(), "-", cell.error, "-", "-",
                          "-", "-"});
            continue;
        }
        validateMapping(cell.mapping());
        const auto eval = evaluateIced(cell.mapping(), model);
        table.addRow(
            {cgra.describe(),
             std::to_string(cgra.islandCount()),
             std::to_string(eval.ii),
             TableWriter::num(100 * eval.stats.avgUtilization, 1) +
                 "%",
             TableWriter::num(100 * eval.stats.avgDvfsFraction, 1) +
                 "%",
             TableWriter::num(eval.power.totalMw, 1),
             TableWriter::num(eval.power.totalMw * eval.ii, 0)});
    }
    table.print(std::cout);
    std::cout << "\n'mW x II' is an energy-per-iteration proxy: lower "
                 "is better at equal throughput requirements.\n";
}

/**
 * Run `grid` on one or more remote iced_serve back-ends
 * (comma-separated addresses → sharded); results stay in grid order.
 */
std::vector<JobResult>
runOnServer(const std::string &server_list,
            const std::vector<JobSpec> &grid)
{
    std::vector<RequestCell> cells;
    cells.reserve(grid.size());
    for (const JobSpec &spec : grid) {
        RequestCell cell;
        cell.config = spec.fabric;
        cell.options = spec.options;
        cell.dfg = findKernel(spec.kernel).build(spec.unroll);
        cells.push_back(std::move(cell));
    }

    std::vector<std::string> addresses;
    {
        std::stringstream stream(server_list);
        std::string part;
        while (std::getline(stream, part, ','))
            if (!part.empty())
                addresses.push_back(part);
    }
    fatalIf(addresses.empty(), "--server: empty address list");

    std::vector<MapReplyMsg> replies;
    if (addresses.size() == 1) {
        ServiceClient client(addresses[0]);
        replies = client.sweep(cells);
    } else {
        ShardedClient client(addresses);
        replies = client.sweep(cells);
        const ShardedClient::ShardStats &stats = client.lastStats();
        std::cerr << "exec: shard backends=" << addresses.size()
                  << " dead=" << stats.deadBackends
                  << " failover=" << stats.failovers
                  << " retries=" << stats.retries
                  << " leases=" << stats.leases
                  << " steals=" << stats.steals
                  << " stolen-cells=" << stats.stolenCells
                  << " dup-replies=" << stats.duplicateReplies << "\n";
    }

    std::vector<JobResult> results(grid.size());
    for (std::size_t i = 0; i < replies.size(); ++i) {
        JobResult &result = results[i];
        result.spec = grid[i];
        result.entry = decodeReplyEntry(replies[i]);
        result.error = replies[i].error;
        switch (replies[i].status) {
        case ReplyStatus::Mapped:
            result.status = JobResult::Status::Mapped;
            break;
        case ReplyStatus::NoFit:
            result.status = JobResult::Status::NoFit;
            result.error = "no fit";
            break;
        default:
            result.status = JobResult::Status::Failed;
            break;
        }
    }
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    TraceCli trace;
    if (!trace.parse(argc, argv))
        return 2;
    std::string serverSocket;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--server" && i + 1 < argc)
            serverSocket = argv[++i];
        else
            positional.push_back(arg);
    }
    const std::string name = !positional.empty() ? positional[0] : "gemm";
    const int unroll =
        positional.size() > 1 ? std::atoi(positional[1].c_str()) : 1;

    std::vector<std::string> kernels;
    if (name == "all") {
        for (const Kernel *k : singleKernels())
            kernels.push_back(k->name);
    } else {
        kernels.push_back(name);
    }

    // Reject bad arguments before dispatching the sweep: the runner
    // would dutifully fail every cell, and the table header rebuilds
    // the DFG anyway.
    try {
        for (const std::string &k : kernels)
            findKernel(k).build(unroll);
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }

    trace.begin();
    const std::vector<CgraConfig> fabrics = sweepFabrics();
    const std::vector<JobSpec> grid = ExperimentRunner::makeGrid(
        kernels, {unroll}, fabrics, {{"iced", MapperOptions{}}});

    std::vector<JobResult> results;
    if (!serverSocket.empty()) {
        try {
            results = runOnServer(serverSocket, grid);
        } catch (const FatalError &err) {
            std::cerr << "error: " << err.what() << "\n";
            return 1;
        }
    }

    RunnerOptions ropts;
    ropts.progress = true;
    ExperimentRunner runner(ropts);
    if (serverSocket.empty())
        results = runner.run(grid);

    for (std::size_t k = 0; k < kernels.size(); ++k) {
        if (k > 0)
            std::cout << "\n";
        const auto first = results.begin() +
                           static_cast<std::ptrdiff_t>(k * fabrics.size());
        printKernelTable(
            kernels[k], unroll,
            std::vector<JobResult>(first,
                                   first + static_cast<std::ptrdiff_t>(
                                               fabrics.size())));
    }

    if (serverSocket.empty())
        std::cerr << "exec: sweep of " << grid.size() << " cells on "
                  << runner.threads() << " threads; cache "
                  << runner.cache().describeStats() << "\n";
    else
        std::cerr << "exec: sweep of " << grid.size()
                  << " cells served by " << serverSocket << "\n";
    return trace.finish() ? 0 : 1;
}
