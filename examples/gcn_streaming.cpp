/**
 * @file
 * Streaming GCN inference on the ICED runtime: partition the 6x6
 * fabric across the six pipeline stages, stream 150 ENZYMES-like
 * graphs, and watch the DVFS Controller chase the moving bottleneck.
 *
 *   ./gcn_streaming [--trace-out FILE] [--metrics-out FILE]
 */
#include <iostream>

#include "common/table_writer.hpp"
#include "streaming/stream_sim.hpp"
#include "trace/trace_cli.hpp"

using namespace iced;

int
main(int argc, char **argv)
{
    TraceCli trace;
    if (!trace.parse(argc, argv))
        return 2;
    trace.begin();
    Cgra cgra(CgraConfig{});
    PowerModel model;
    Rng rng(2024);
    const AppDef app = makeGcnApp(rng, 150);

    Partitioner partitioner(cgra);
    const PartitionPlan plan = partitioner.plan(app, 50, true);

    std::cout << "GCN pipeline on " << cgra.describe() << " ("
              << plan.usedIslands << "/" << plan.totalIslands
              << " islands allocated):\n";
    for (const StagePlan &s : plan.stages)
        std::cout << "  " << s.label << ": " << s.islands
                  << " island(s), II=" << s.ii << "\n";

    const auto iced = simulateStream(app, partitioner, plan,
                                     StreamPolicy::IcedDvfs, model);
    const PartitionPlan conv = partitioner.plan(app, 50, false);
    const auto fixed = simulateStream(app, partitioner, conv,
                                      StreamPolicy::StaticNormal,
                                      model);

    std::cout << "\nper-window DVFS decisions (first 8 windows):\n";
    TableWriter table({"window", "levels (per stage)", "uJ"});
    for (std::size_t w = 0; w < iced.windows.size() && w < 8; ++w) {
        std::string levels;
        for (DvfsLevel l : iced.windows[w].stageLevels)
            levels += toString(l).substr(0, 3) + " ";
        table.addRow({std::to_string(w), levels,
                      TableWriter::num(iced.windows[w].energyUj, 1)});
    }
    table.print(std::cout);

    std::cout << "\n150 graphs: ICED "
              << TableWriter::num(iced.energyUj, 1) << " uJ in "
              << TableWriter::num(iced.makespanCycles / 1e6, 2)
              << " Mcycles; static-normal "
              << TableWriter::num(fixed.energyUj, 1) << " uJ in "
              << TableWriter::num(fixed.makespanCycles / 1e6, 2)
              << " Mcycles\n";
    std::cout << "energy saved: "
              << TableWriter::num(
                     100.0 * (1.0 - iced.energyUj / fixed.energyUj), 1)
              << "% at "
              << TableWriter::num(
                     100.0 * iced.makespanCycles / fixed.makespanCycles,
                     1)
              << "% of the static makespan\n";
    return trace.finish() ? 0 : 1;
}
